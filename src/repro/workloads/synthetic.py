"""User-facing synthetic workload builder with explicit dynamic targets.

The 19 named benchmarks hard-code their Table 1 targets; this API exposes
the same machinery for arbitrary targets — useful for sensitivity studies
("what does my reporting architecture do at 40% report cycles with
16-wide bursts?") and for the empirical Figure 10 validation.
"""

from ..errors import WorkloadError
from ..regex.compiler import compile_pattern
from .base import (
    WorkloadInstance,
    WorkloadRandom,
    assemble,
    build_input,
    burst_group_patterns,
    escape_literal,
    grow_cold_rules,
    infer_noise_budget,
    poisson_positions,
)


def synthetic_workload(
    name="synthetic",
    states=500,
    report_cycle_pct=5.0,
    burst_size=1,
    burst_fraction=1.0,
    pattern_length=12,
    witness_length=6,
    scale=0.01,
    seed=0,
):
    """Build a workload hitting the requested dynamic profile.

    Parameters
    ----------
    states:
        Target automaton size (cold rules pad to it).
    report_cycle_pct:
        Percentage of byte cycles with at least one report.
    burst_size / burst_fraction:
        ``burst_fraction`` of reporting cycles fire ``burst_size``
        same-cycle reports (a shared-witness burst group); the rest fire
        a single report.
    pattern_length:
        Cold-rule length — controls the report-state fraction
        (roughly ``1/pattern_length``).
    witness_length:
        Hot-witness length; must satisfy
        ``report_cycle_pct/100 * (witness_length + 1) < 1`` so the plants
        fit in the stream.
    """
    if burst_size < 1:
        raise WorkloadError("burst_size must be >= 1")
    if not 0.0 <= burst_fraction <= 1.0:
        raise WorkloadError("burst_fraction must be in [0, 1]")
    if not 0.0 <= report_cycle_pct <= 100.0:
        raise WorkloadError("report_cycle_pct must be in [0, 100]")
    density = report_cycle_pct / 100.0 * (witness_length + 1)
    if density >= 1.0:
        raise WorkloadError(
            "witness_length %d too long for %.1f%% report cycles"
            % (witness_length, report_cycle_pct)
        )

    rng = WorkloadRandom(seed)
    input_length = infer_noise_budget(scale)

    burst_witness = rng.literal(witness_length, b"abcdefghijklmnop")
    single_witness = rng.literal(witness_length, b"qrstuvwxyz")
    hot_rules = []
    if burst_size > 1:
        for index, body in enumerate(
            burst_group_patterns(burst_witness, burst_size, rng)
        ):
            hot_rules.append(compile_pattern(
                body, name="%s_b%d" % (name, index),
                report_code="%s/b%d" % (name, index),
            ))
    else:
        hot_rules.append(compile_pattern(
            escape_literal(burst_witness), name="%s_b0" % name,
            report_code="%s/b0" % name,
        ))
    hot_rules.append(compile_pattern(
        escape_literal(single_witness), name="%s_s" % name,
        report_code="%s/s" % name,
    ))

    cold_budget = max(0, states - sum(len(rule) for rule in hot_rules))
    cold = grow_cold_rules(
        rng, lambda r: escape_literal(r.cold_literal(pattern_length)),
        cold_budget, name,
    )
    automaton = assemble(name, hot_rules + cold)

    total_plants = int(round(input_length * report_cycle_pct / 100.0))
    burst_plants = int(round(total_plants * burst_fraction))
    single_plants = total_plants - burst_plants
    positions = poisson_positions(
        rng, input_length, burst_plants + single_plants, witness_length
    )
    plants = [(p, burst_witness) for p in positions[:burst_plants]]
    plants += [(p, single_witness) for p in positions[burst_plants:]]
    data = build_input(rng, input_length, plants)
    return WorkloadInstance(name, "Synthetic", automaton, data, {
        "report_cycle_pct": report_cycle_pct,
        "reports_per_report_cycle": (
            burst_fraction * burst_size + (1.0 - burst_fraction)
        ),
    })
