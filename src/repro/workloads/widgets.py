"""Widget-family workloads: SPM, RandomForest, Fermi, EntityResolution.

ANMLZoo's "Widget" benchmarks are machine-generated automata with very
regular structure.  Each builder reproduces the published shape: states
per rule, report-state fraction, and — through planted witnesses — the
dynamic reporting profile of Table 1 (SPM's 1394-wide report bursts are
the stress case the whole reporting architecture is designed around).
"""

from ..automata.automaton import Automaton
from ..automata.ste import StartKind
from ..automata.symbolset import SymbolSet
from .base import (
    WorkloadInstance,
    WorkloadRandom,
    assemble,
    build_input,
    infer_noise_budget,
    poisson_positions,
    scaled,
)

#: Item alphabet for the data-mining widgets.
ITEM_ALPHABET = b"abcdefghijklmnopqrstuvwxyz"


def spm_automaton(items, name, report_code):
    """One sequential-pattern-mining automaton (Wang et al., CF'16).

    Matches ``items[0] .* items[1] .* ... items[k-1]`` via gap states
    that self-loop on any symbol — the classic SPM widget: an item chain
    where arbitrary transactions may separate the items.
    """
    automaton = Automaton(name=name, bits=8)
    previous = None
    last = len(items) - 1
    for index, item in enumerate(items):
        item_id = "%s_i%d" % (name, index)
        automaton.new_state(
            item_id,
            SymbolSet.single(8, item),
            start=StartKind.ALL_INPUT if index == 0 else StartKind.NONE,
            report=index == last,
            report_code=report_code if index == last else None,
        )
        if previous is not None:
            gap_id = "%s_g%d" % (name, index)
            automaton.new_state(gap_id, SymbolSet.full(8))
            automaton.add_transition(previous, gap_id)
            automaton.add_transition(gap_id, gap_id)
            automaton.add_transition(gap_id, item_id)
            automaton.add_transition(previous, item_id)
        previous = item_id
    return automaton.validate()


def chain_automaton(classes, name, report_code, start=StartKind.ALL_INPUT):
    """A straight chain of character-class states, reporting at the end."""
    automaton = Automaton(name=name, bits=8)
    previous = None
    last = len(classes) - 1
    for index, symbol_set in enumerate(classes):
        state_id = "%s_%d" % (name, index)
        automaton.new_state(
            state_id,
            symbol_set,
            start=start if index == 0 else StartKind.NONE,
            report=index == last,
            report_code=report_code if index == last else None,
        )
        if previous is not None:
            automaton.add_transition(previous, state_id)
        previous = state_id
    return automaton.validate()


def build_spm(scale=0.02, seed=0, paper_row=None):
    """SPM stand-in: dense, bursty reporting (paper: 1394 reports/cycle).

    A planted "burst transaction" satisfies a large fraction of the
    mined patterns simultaneously: every burst rule is a subsequence of
    one witness string, so a single plant fires them all on the same
    cycle (their items chains all end on the witness's last symbol).
    """
    rng = WorkloadRandom(seed)
    input_length = infer_noise_budget(scale)
    states_target = scaled(100_500, scale, minimum=200)
    # Paper shape: ~20 states per mined pattern (100500/5025), and the
    # burst width is 27.7% of the report states.
    report_target = max(4, states_target // 20)
    burst_size = max(2, int(round(0.277 * report_target)))

    witness = rng.literal(14, ITEM_ALPHABET)
    rules = []
    # Burst rules: long subsequences of the witness sharing its final
    # symbol, so one plant of `witness` completes every one of them at
    # once (and each rule has the paper's ~20-state footprint).
    seen = set()
    while len(rules) < burst_size:
        k = rng.randint(8, 10)
        picks = sorted(rng.sample(range(len(witness) - 1), k - 1))
        items = bytes(witness[p] for p in picks) + witness[-1:]
        if items in seen:
            continue
        seen.add(items)
        rules.append(spm_automaton(
            items, "spm_b%d" % len(rules), "SPM/b%d" % len(rules)
        ))

    # Cold rules bulk the automaton out to the paper's state count; they
    # mine items from a disjoint alphabet so they never complete.
    cold_alphabet = bytes(range(0x80, 0xA0))
    total = sum(len(rule) for rule in rules)
    while total < states_target:
        k = rng.randint(9, 11)
        items = rng.literal(k, cold_alphabet)
        rule = spm_automaton(
            items, "spm_c%d" % len(rules), "SPM/c%d" % len(rules)
        )
        rules.append(rule)
        total += len(rule)
    automaton = assemble("SPM", rules)

    plant_count = int(round(input_length * 3.24 / 100.0))
    positions = poisson_positions(
        rng, input_length, max(1, plant_count), len(witness)
    )
    # Noise must avoid the witness letters: SPM gap states pass anything,
    # so stray witness symbols would complete patterns early.
    noise = bytes(sorted(set(b"0123456789 ,;") - set(witness)))
    data = build_input(
        rng, input_length, [(p, witness) for p in positions],
        noise_alphabet=noise,
    )
    return WorkloadInstance("SPM", "Widget", automaton, data, paper_row)


def build_randomforest(scale=0.02, seed=0, paper_row=None):
    """RandomForest stand-in: fixed-depth feature chains, 6.4-wide bursts."""
    rng = WorkloadRandom(seed)
    input_length = infer_noise_budget(scale)
    states_target = scaled(33_220, scale, minimum=120)
    depth = 20  # 33220 states / 1661 report states = 20 states per tree
    burst_size = 7

    witness = rng.literal(depth, ITEM_ALPHABET)
    rules = []
    for index in range(burst_size):
        # Each tree tests the same feature vector with wider thresholds
        # (classes containing the witness symbol), so one plant satisfies
        # the whole group of trees.
        classes = []
        for position in range(depth):
            value = witness[position]
            low = max(ord("a"), value - rng.randint(0, 2))
            high = min(ord("z"), value + rng.randint(0, 2))
            classes.append(SymbolSet.from_ranges(8, [(low, high)]))
        rules.append(chain_automaton(
            classes, "rf_b%d" % index, "RF/b%d" % index
        ))

    cold_low, cold_high = 0x80, 0x9F
    total = sum(len(rule) for rule in rules)
    while total < states_target:
        classes = [
            SymbolSet.from_ranges(8, [(
                rng.randint(cold_low, cold_high - 4),
                rng.randint(cold_high - 3, cold_high),
            )])
            for _ in range(depth)
        ]
        rule = chain_automaton(
            classes, "rf_c%d" % len(rules), "RF/c%d" % len(rules)
        )
        rules.append(rule)
        total += len(rule)
    automaton = assemble("RandomForest", rules)

    plant_count = max(1, int(round(input_length * 0.32 / 100.0)))
    positions = poisson_positions(rng, input_length, plant_count, depth)
    data = build_input(rng, input_length, [(p, witness) for p in positions])
    return WorkloadInstance("RandomForest", "Widget", automaton, data, paper_row)


def build_fermi(scale=0.02, seed=0, paper_row=None):
    """Fermi stand-in: particle-path chains, ~7-wide report bursts."""
    rng = WorkloadRandom(seed)
    input_length = infer_noise_budget(scale)
    states_target = scaled(40_783, scale, minimum=120)
    depth = 17  # 40783 / 2399 report states
    burst_size = 8

    witness = rng.literal(depth, ITEM_ALPHABET)
    rules = []
    for index in range(burst_size):
        classes = []
        for position in range(depth):
            value = witness[position]
            members = {value}
            while len(members) < rng.randint(1, 3):
                members.add(rng.choice(ITEM_ALPHABET))
            classes.append(SymbolSet.of(8, members))
        rules.append(chain_automaton(
            classes, "fermi_b%d" % index, "Fermi/b%d" % index
        ))

    total = sum(len(rule) for rule in rules)
    while total < states_target:
        classes = [
            SymbolSet.of(8, {rng.randint(0x80, 0x9F) for _ in range(3)})
            for _ in range(depth)
        ]
        rule = chain_automaton(
            classes, "fermi_c%d" % len(rules), "Fermi/c%d" % len(rules)
        )
        rules.append(rule)
        total += len(rule)
    automaton = assemble("Fermi", rules)

    plant_count = max(1, int(round(input_length * 1.28 / 100.0)))
    positions = poisson_positions(rng, input_length, plant_count, depth)
    data = build_input(rng, input_length, [(p, witness) for p in positions])
    return WorkloadInstance("Fermi", "Widget", automaton, data, paper_row)


def build_entityresolution(scale=0.02, seed=0, paper_row=None):
    """EntityResolution stand-in: long name-matching chains, sparse reports."""
    rng = WorkloadRandom(seed)
    input_length = infer_noise_budget(scale)
    states_target = scaled(95_136, scale, minimum=200)
    # The paper's ratio is ~95 states per report state; hot chains are
    # kept short enough for 2.73% plant density, cold chains are long to
    # pull the report-state fraction down toward the paper's 1.1%.
    depth = 24
    cold_depth = 70
    witness = rng.literal(depth, ITEM_ALPHABET)

    rules = []
    # A burst pair giving 1.32 reports per report cycle: the "strict"
    # rule matches only the exact witness; the "fuzzy" rule also accepts
    # '?' placeholders, so mutated plants fire it alone.
    for index, fuzzy in enumerate((False, True)):
        classes = []
        for position in range(depth):
            members = {witness[position]}
            if fuzzy:
                members.add(0x3F)  # '?'
            classes.append(SymbolSet.of(8, members))
        rules.append(chain_automaton(
            classes, "er_b%d" % index, "ER/b%d" % index
        ))

    total = sum(len(rule) for rule in rules)
    while total < states_target:
        classes = [
            SymbolSet.of(8, {rng.randint(0xA0, 0xBF), rng.randint(0xA0, 0xBF)})
            for _ in range(cold_depth)
        ]
        rule = chain_automaton(
            classes, "er_c%d" % len(rules), "ER/c%d" % len(rules)
        )
        rules.append(rule)
        total += len(rule)
    automaton = assemble("EntityResolution", rules)

    # 2.73% report cycles, 32% of which fire both burst rules; the pair
    # shares the witness, so every plant fires both — thin the second
    # rule's firing by planting a mutated witness for 68% of plants.
    plant_count = max(1, int(round(input_length * 2.73 / 100.0)))
    positions = poisson_positions(rng, input_length, plant_count, depth)
    plants = []
    for position in positions:
        if rng.random() < 0.32:
            plants.append((position, witness))
        else:
            mutated = bytearray(witness)
            spot = rng.randrange(depth)
            # '?' fails the strict rule but passes the fuzzy one.
            mutated[spot] = 0x3F
            plants.append((position, bytes(mutated)))
    data = build_input(rng, input_length, plants)
    return WorkloadInstance(
        "EntityResolution", "Widget", automaton, data, paper_row
    )
