"""Shared fixtures and generators for the test suite."""

import random

import pytest

from repro.automata import Automaton, StartKind, SymbolSet
from repro.regex import compile_pattern


def random_automaton(rng, n_states=8, bits=8, edge_density=0.25,
                     report_fraction=0.3, all_input=True):
    """A random (connected-ish) homogeneous NFA for differential tests."""
    automaton = Automaton(name="rand", bits=bits)
    ids = []
    for index in range(n_states):
        members = rng.sample(range(1 << bits), rng.randint(1, min(6, 1 << bits)))
        start = StartKind.NONE
        if index == 0:
            start = StartKind.ALL_INPUT if all_input else StartKind.START_OF_DATA
        elif rng.random() < 0.15:
            start = rng.choice([StartKind.ALL_INPUT, StartKind.START_OF_DATA])
        report = rng.random() < report_fraction
        automaton.new_state(
            "s%d" % index,
            SymbolSet.of(bits, members),
            start=start,
            report=report,
            report_code="c%d" % index if report else None,
        )
        ids.append("s%d" % index)
    for src in ids:
        for dst in ids:
            if rng.random() < edge_density:
                automaton.add_transition(src, dst)
    automaton.prune_unreachable()
    return automaton


@pytest.fixture
def rng():
    return random.Random(12345)


@pytest.fixture(scope="session")
def small_ruleset():
    """A compiled multi-pattern ruleset reused across tests."""
    from repro.regex import compile_ruleset
    return compile_ruleset(["abc", "b.d", "xy+z", "[0-9]{3}", "he(llo)+"])


@pytest.fixture(scope="session")
def abc_automaton():
    return compile_pattern("abc", report_code="abc")
