"""Aho-Corasick baseline tests: three-way differential anchoring."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.aho_corasick import AhoCorasick
from repro.errors import WorkloadError
from repro.sim import BitsetEngine


def _reference_find(patterns, data):
    """Brute-force oracle: all (end, code) pairs by direct scanning."""
    hits = set()
    for pattern, code in patterns:
        for start in range(len(data) - len(pattern) + 1):
            if data[start:start + len(pattern)] == pattern:
                hits.add((start + len(pattern) - 1, code))
    return hits


class TestMatching:
    def test_textbook_example(self):
        # The classic {he, she, his, hers} example.
        ac = AhoCorasick([b"he", b"she", b"his", b"hers"])
        hits = ac.find(b"ushers")
        assert hits == {(3, b"she"), (3, b"he"), (5, b"hers")}

    def test_overlapping_patterns(self):
        ac = AhoCorasick([b"aa", b"aaa"])
        assert ac.find(b"aaaa") == {
            (1, b"aa"), (2, b"aa"), (3, b"aa"), (2, b"aaa"), (3, b"aaa"),
        }

    def test_custom_codes(self):
        ac = AhoCorasick([(b"ab", "X"), (b"b", "Y")])
        assert ac.find(b"ab") == {(1, "X"), (1, "Y")}

    def test_empty_pattern_rejected(self):
        with pytest.raises(WorkloadError):
            AhoCorasick([b""])
        with pytest.raises(WorkloadError):
            AhoCorasick([])

    @pytest.mark.parametrize("seed", range(10))
    def test_against_bruteforce(self, seed):
        rng = random.Random(seed)
        patterns = [
            (bytes(rng.choice(b"abc") for _ in range(rng.randint(1, 4))),
             index)
            for index in range(rng.randint(1, 6))
        ]
        ac = AhoCorasick(patterns)
        for _ in range(10):
            data = bytes(rng.choice(b"abc") for _ in range(rng.randint(0, 30)))
            assert ac.find(data) == _reference_find(patterns, data), (
                patterns, data,
            )

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=4), min_size=1,
                    max_size=5),
           st.binary(max_size=32))
    def test_against_bruteforce_hypothesis(self, raw_patterns, data):
        patterns = [(pattern, index)
                    for index, pattern in enumerate(raw_patterns)]
        ac = AhoCorasick(patterns)
        assert ac.find(data) == _reference_find(patterns, data)


class TestNfaConversion:
    def test_nfa_matches_ac(self):
        patterns = [b"he", b"she", b"his", b"hers"]
        ac = AhoCorasick(patterns)
        automaton = ac.to_automaton()
        data = b"ushers and his heroes"
        recorder = BitsetEngine(automaton).run(list(data))
        nfa_hits = set()
        for event in recorder.events:
            for code in event.report_code.split("+"):
                nfa_hits.add((event.position, code))
        want = {(pos, str(code)) for pos, code in ac.find(data)}
        assert nfa_hits == want

    @pytest.mark.parametrize("seed", range(6))
    def test_nfa_matches_ac_random(self, seed):
        rng = random.Random(100 + seed)
        patterns = sorted({
            bytes(rng.choice(b"xy") for _ in range(rng.randint(1, 5)))
            for _ in range(rng.randint(1, 5))
        })
        ac = AhoCorasick(patterns)
        automaton = ac.to_automaton()
        data = bytes(rng.choice(b"xy") for _ in range(40))
        recorder = BitsetEngine(automaton).run(list(data))
        nfa_hits = set()
        for event in recorder.events:
            for code in event.report_code.split("+"):
                nfa_hits.add((event.position, code))
        want = {(pos, str(code)) for pos, code in ac.find(data)}
        assert nfa_hits == want

    def test_nfa_feeds_the_sunder_pipeline(self):
        from repro.transform import check_equivalent, to_rate
        automaton = AhoCorasick([b"virus", b"rusty"]).to_automaton()
        strided = to_rate(automaton, 4)
        check_equivalent(automaton, strided, b"a virusty virus!")

    def test_state_counts(self):
        ac = AhoCorasick([b"he", b"she", b"his", b"hers"])
        # Trie nodes: h,e, s,h,e, i,s, r,s -> 9 + root.
        assert ac.num_states == 10
        assert len(ac.to_automaton()) == 9

    def test_memory_model_positive(self):
        ac = AhoCorasick([b"abc"])
        assert ac.memory_bytes() > 0
