"""Report-analytics tests."""

import pytest

from repro.errors import SimulationError
from repro.sim import ReportRecorder
from repro.sim.analysis import (
    buffer_pressure,
    burst_widths,
    density_timeline,
    inter_report_gaps,
    per_code_counts,
    summarize_analysis,
)


def _recorder(cycle_counts, keep_events=True):
    recorder = ReportRecorder(keep_events=keep_events)
    for cycle, count in cycle_counts:
        for index in range(count):
            recorder.record(cycle, cycle, "s%d" % index, "c%d" % index)
    return recorder


class TestGapsAndBursts:
    def test_gaps(self):
        recorder = _recorder([(0, 1), (10, 1), (15, 2)])
        assert inter_report_gaps(recorder) == [10, 5]

    def test_no_gaps_for_single_cycle(self):
        assert inter_report_gaps(_recorder([(5, 3)])) == []

    def test_burst_widths(self):
        recorder = _recorder([(0, 1), (1, 4), (2, 4)])
        assert burst_widths(recorder) == {1: 1, 4: 2}

    def test_per_code_counts(self):
        recorder = _recorder([(0, 2), (1, 1)])
        counts = per_code_counts(recorder)
        assert counts["c0"] == 2 and counts["c1"] == 1

    def test_per_code_requires_events(self):
        recorder = _recorder([(0, 1)], keep_events=False)
        with pytest.raises(SimulationError):
            per_code_counts(recorder)


class TestTimeline:
    def test_windows_partition_reports(self):
        recorder = _recorder([(0, 1), (50, 2), (99, 3)])
        timeline = density_timeline(recorder, 100, windows=2)
        assert timeline == [1, 5]
        assert sum(timeline) == recorder.total_reports

    def test_validation(self):
        recorder = _recorder([(0, 1)])
        with pytest.raises(SimulationError):
            density_timeline(recorder, 0)
        with pytest.raises(SimulationError):
            density_timeline(recorder, 10, windows=0)


class TestBufferPressure:
    def test_peak_without_drain(self):
        recorder = _recorder([(c, 1) for c in range(10)])
        peak, overflows, final = buffer_pressure(recorder, 100, 20)
        assert peak == 10 and overflows == 0 and final == 10

    def test_overflow_counted(self):
        recorder = _recorder([(c, 1) for c in range(10)])
        peak, overflows, _ = buffer_pressure(recorder, 4, 20)
        assert overflows == 2
        assert peak <= 5

    def test_drain_reduces_level(self):
        recorder = _recorder([(0, 1), (10, 1)])
        _, _, final = buffer_pressure(recorder, 100, 20, drain_per_cycle=0.2)
        assert final == 0.0

    def test_validation(self):
        recorder = _recorder([(5, 1)])
        with pytest.raises(SimulationError):
            buffer_pressure(recorder, 0, 10)
        with pytest.raises(SimulationError):
            buffer_pressure(recorder, 10, 5)


class TestSummary:
    def test_full_summary(self):
        recorder = _recorder([(0, 1), (10, 3)])
        summary = summarize_analysis(recorder, 20)
        assert summary["max_burst"] == 3
        assert summary["min_gap"] == 10
        assert summary["hot_codes"][0][0] == "c0"

    def test_empty_recorder(self):
        summary = summarize_analysis(ReportRecorder(), 10)
        assert summary["max_burst"] == 0
        assert summary["min_gap"] is None

    def test_on_real_workload(self):
        from repro.workloads import generate
        instance = generate("TCP", scale=0.002, seed=0)
        row = instance.measured_behavior()
        recorder = row["recorder"]
        summary = summarize_analysis(recorder, row["cycles"])
        assert summary["report_cycles"] == row["report_cycles"]
        assert len(summary["timeline"]) == 20
