"""Tests for Ste and Automaton structure."""

import pytest

from repro.automata import Automaton, StartKind, Ste, SymbolSet, single_pattern
from repro.errors import AutomatonError


def _sset(*values):
    return SymbolSet.of(8, values)


class TestSte:
    def test_basic_construction(self):
        ste = Ste("q", _sset(1), start="all-input", report=True, report_code="r")
        assert ste.start is StartKind.ALL_INPUT
        assert ste.report and ste.report_code == "r"
        assert ste.report_offsets == (0,)
        assert ste.arity == 1 and ste.bits == 8

    def test_vector_symbols(self):
        ste = Ste("q", (_sset(1), _sset(2)), report=True,
                  report_offsets=(0, 1))
        assert ste.arity == 2
        assert ste.report_offsets == (0, 1)

    def test_default_report_offset_is_last(self):
        ste = Ste("q", (_sset(1), _sset(2)), report=True)
        assert ste.report_offsets == (1,)

    def test_report_code_dropped_when_not_reporting(self):
        ste = Ste("q", _sset(1), report=False, report_code="x")
        assert ste.report_code is None

    def test_offsets_without_report_rejected(self):
        with pytest.raises(AutomatonError):
            Ste("q", _sset(1), report=False, report_offsets=(0,))

    def test_offset_out_of_range_rejected(self):
        with pytest.raises(AutomatonError):
            Ste("q", _sset(1), report=True, report_offsets=(1,))

    def test_mixed_widths_rejected(self):
        with pytest.raises(AutomatonError):
            Ste("q", (_sset(1), SymbolSet.of(4, [1])))

    def test_matches(self):
        ste = Ste("q", (_sset(1, 2), _sset(3)))
        assert ste.matches((1, 3)) and ste.matches((2, 3))
        assert not ste.matches((1, 4))
        with pytest.raises(AutomatonError):
            ste.matches((1,))

    def test_clone_preserves_everything(self):
        ste = Ste("q", _sset(1), start="start-of-data", report=True,
                  report_code="r")
        copy = ste.clone("q2")
        assert copy.id == "q2"
        assert copy.behavior_key() == ste.behavior_key()


class TestAutomaton:
    def test_add_and_query(self):
        automaton = Automaton(bits=8)
        automaton.new_state("a", _sset(1), start="all-input")
        automaton.new_state("b", _sset(2), report=True, report_code="b")
        automaton.add_transition("a", "b")
        assert len(automaton) == 2
        assert automaton.successors("a") == {"b"}
        assert automaton.predecessors("b") == {"a"}
        assert [s.id for s in automaton.report_states()] == ["b"]
        assert automaton.num_transitions() == 1
        automaton.validate()

    def test_duplicate_id_rejected(self):
        automaton = Automaton()
        automaton.new_state("a", _sset(1))
        with pytest.raises(AutomatonError):
            automaton.new_state("a", _sset(2))

    def test_shape_mismatch_rejected(self):
        automaton = Automaton(bits=8)
        with pytest.raises(AutomatonError):
            automaton.add_state(Ste("x", SymbolSet.of(4, [1])))
        automaton2 = Automaton(bits=8, arity=2)
        with pytest.raises(AutomatonError):
            automaton2.add_state(Ste("x", _sset(1)))

    def test_transition_to_unknown_state_rejected(self):
        automaton = Automaton()
        automaton.new_state("a", _sset(1), start="all-input")
        with pytest.raises(AutomatonError):
            automaton.add_transition("a", "ghost")

    def test_remove_state_cleans_edges(self):
        automaton = Automaton()
        automaton.new_state("a", _sset(1), start="all-input")
        automaton.new_state("b", _sset(2))
        automaton.add_transition("a", "b")
        automaton.add_transition("b", "a")
        automaton.remove_state("b")
        assert automaton.successors("a") == set()
        assert automaton.predecessors("a") == set()

    def test_validate_rejects_unreachable(self):
        automaton = Automaton()
        automaton.new_state("a", _sset(1), start="all-input")
        automaton.new_state("orphan", _sset(2))
        with pytest.raises(AutomatonError):
            automaton.validate()
        assert automaton.prune_unreachable() == 1
        automaton.validate()

    def test_validate_rejects_empty_symbol_set(self):
        automaton = Automaton()
        ste = Ste("a", _sset(1), start="all-input")
        object.__setattr__  # noqa: B018 - documents intent
        automaton.add_state(ste)
        ste.symbols = (SymbolSet.empty(8),)
        with pytest.raises(AutomatonError):
            automaton.validate()

    def test_copy_is_deep_for_structure(self):
        original = single_pattern("p", b"ab")
        duplicate = original.copy()
        duplicate.remove_state("p_1")
        assert "p_1" in original and "p_1" not in duplicate

    def test_relabeled_preserves_behavior(self):
        from repro.sim import BitsetEngine
        original = single_pattern("p", b"abc")
        relabeled = original.relabeled()
        data = list(b"xxabcx")
        assert (
            BitsetEngine(original).run(data).positions()
            == BitsetEngine(relabeled).run(data).positions()
        )

    def test_merge_in_shape_checks(self):
        a = Automaton(bits=8)
        b = Automaton(bits=4)
        with pytest.raises(AutomatonError):
            a.merge_in(b, "x_")

    def test_summary(self):
        automaton = single_pattern("p", b"abcd")
        summary = automaton.summary()
        assert summary["states"] == 4
        assert summary["report_states"] == 1
        assert summary["report_state_pct"] == 25.0


class TestSinglePattern:
    def test_matches_literal_everywhere(self):
        from repro.sim import BitsetEngine
        automaton = single_pattern("p", b"ab", report_code="hit")
        recorder = BitsetEngine(automaton).run(list(b"ababxab"))
        assert recorder.positions() == [1, 3, 6]

    def test_empty_pattern_rejected(self):
        with pytest.raises(AutomatonError):
            single_pattern("p", b"")
