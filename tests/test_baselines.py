"""AP / AP+RAD reporting-model and throughput-model tests."""

import pytest

from repro.baselines import (
    ApReportingModel,
    SUNDER_THROUGHPUT,
    ThroughputModel,
    figure8_rows,
)
from repro.errors import ArchitectureError
from repro.sim.reports import ReportEvent


def _events(cycles_and_states):
    return [
        ReportEvent(cycle, cycle, state, state)
        for cycle, state in cycles_and_states
    ]


STATE_IDS = ["s%d" % index for index in range(32)]


class TestApModel:
    def test_silent_workload_is_free(self):
        result = ApReportingModel().evaluate([], STATE_IDS, 10_000)
        assert result.slowdown == 1.0

    def test_no_reporting_states_rejected(self):
        with pytest.raises(ArchitectureError):
            ApReportingModel().evaluate([], [], 100)

    def test_every_cycle_reporting_saturates(self):
        # One report per cycle forever: the queue saturates and the
        # steady-state cost is one region offload per cycle over the
        # export bandwidth (1088/40 ~ 27x).
        total = 200_000
        events = _events((cycle, "s0") for cycle in range(total))
        result = ApReportingModel(scale=0.01).evaluate(events, STATE_IDS, total)
        assert 20.0 < result.slowdown < 30.0

    def test_sparse_reporting_wastes_whole_vector(self):
        # AP offloads the full 1088-bit vector even for a single report.
        events = _events((cycle, "s0") for cycle in range(0, 1000, 100))
        result = ApReportingModel(scale=0.01).evaluate(events, STATE_IDS, 1000)
        assert result.offloaded_bits == 10 * 1088

    def test_multiple_regions_multiply_offload(self):
        model = ApReportingModel(scale=1.0 / 1024)  # region size 1 state
        events = _events([(0, "s0"), (0, "s1"), (1, "s0")])
        offloads, n_regions = model.offload_bits_per_cycle_map(events, STATE_IDS)
        assert n_regions == 32
        assert offloads[0] == 2 * 1088 and offloads[1] == 1088

    def test_same_region_offloads_once(self):
        model = ApReportingModel(scale=1.0)  # region size 1024: all in one
        events = _events([(0, "s0"), (0, "s1"), (0, "s31")])
        offloads, _ = model.offload_bits_per_cycle_map(events, STATE_IDS)
        assert offloads[0] == 1088

    def test_queue_absorbs_bursts(self):
        # A single burst far below capacity costs nothing.
        events = _events((0, "s%d" % index) for index in range(8))
        result = ApReportingModel(scale=1.0).evaluate(events, STATE_IDS, 10_000)
        assert result.slowdown == 1.0


class TestRadModel:
    def test_rad_helps_sparse_reporting(self):
        total = 100_000
        events = _events((cycle, "s0") for cycle in range(total))
        ap = ApReportingModel(rad=False, scale=0.01).evaluate(
            events, STATE_IDS, total
        )
        rad = ApReportingModel(rad=True, scale=0.01).evaluate(
            events, STATE_IDS, total
        )
        assert rad.slowdown < ap.slowdown
        assert rad.offloaded_bits < ap.offloaded_bits

    def test_rad_chunk_payload(self):
        model = ApReportingModel(rad=True, scale=1.0)
        events = _events([(0, "s0")])
        offloads, _ = model.offload_bits_per_cycle_map(events, STATE_IDS)
        assert offloads[0] == 128 + 64

    def test_scale_validation(self):
        with pytest.raises(ArchitectureError):
            ApReportingModel(scale=0)


class TestThroughput:
    def test_kernel_throughput(self):
        model = ThroughputModel("x", 2.0, 8)
        assert model.kernel_gbps() == 16.0
        assert model.effective_gbps(4.0) == 4.0

    def test_overhead_below_one_rejected(self):
        with pytest.raises(ValueError):
            ThroughputModel("x", 1.0, 8).effective_gbps(0.9)

    def test_sunder_is_16bit_at_3p6ghz(self):
        assert SUNDER_THROUGHPUT.bits_per_cycle == 16
        assert SUNDER_THROUGHPUT.frequency_ghz == pytest.approx(3.61, abs=0.05)

    def test_figure8_shape(self):
        rows = figure8_rows(1.0, 4.69, 2.23)
        by_name = {row["architecture"]: row for row in rows}
        # Paper's ordering: Sunder > Impala > CA > AP14 > AP50.
        assert (
            by_name["Sunder"]["ap_reporting_gbps"]
            > by_name["Impala"]["ap_reporting_gbps"]
            > by_name["CA"]["ap_reporting_gbps"]
            > by_name["AP (14nm)"]["ap_reporting_gbps"]
            > by_name["AP (50nm)"]["ap_reporting_gbps"]
        )
        # Headline: two orders of magnitude over the 50nm AP.
        assert by_name["AP (50nm)"]["sunder_speedup_ap"] > 100
        # RAD narrows but does not close the gap.
        for name in ("Impala", "CA", "AP (14nm)", "AP (50nm)"):
            assert (
                by_name[name]["sunder_speedup_rad"]
                < by_name[name]["sunder_speedup_ap"]
            )
