"""Differential suite for batched and sharded execution.

Every fast-path strategy — ``BitsetEngine.run_batch`` (both lane
layouts), ``BitsetEngine.run_sharded`` (sequential and interleaved,
in-process and through a worker pool), ``SunderDevice.run_batch``, and
the multi-round batch path — must be *bit-exact* against the plain
serial run: identical recorder payloads (event order included) and
identical active-count histories.  The artifact-keying tests pin that
``batch``/``shards`` salt the simulate-stage keys while plain runs keep
their pre-existing keys.
"""

import random

import pytest

from conftest import random_automaton
from repro.automata import StartKind, SymbolSet
from repro.core import SunderConfig, SunderDevice
from repro.core.reconfigure import run_multi_round
from repro.errors import ArchitectureError, SimulationError
from repro.regex import compile_ruleset
from repro.sim import BitsetEngine, stream_for
from repro.sim.parallel import ParallelRunner
from repro.sim.reports import ReportRecorder
from repro.transform import to_rate

RULES = ["abc", "b.d", "xy+z", "hello", "[0-9]{3}", "q(rs|tu)v"]
#: Same shapes minus the ``y+`` loop — sharding needs a finite depth bound.
ACYCLIC_RULES = ["abc", "b.d", "hello", "[0-9]{3}", "q(rs|tu)v"]
DATA_ALPHABET = b"abcdxyz hello0123qrstuv"


def _noisy_data(rng, length=400):
    noise = bytes(rng.choice(DATA_ALPHABET) for _ in range(length))
    return noise + b"abc hello 123 " + noise + b"xyyz qrsv"


def _serial_payloads(automaton, lane_streams, limit=None):
    payloads = []
    histories = []
    for vectors in lane_streams:
        engine = BitsetEngine(automaton)
        recorder = engine.run(vectors, position_limit=limit)
        payloads.append(recorder.to_payload())
        histories.append(list(engine.active_count_history))
    return payloads, histories


@pytest.mark.parametrize("rate", [1, 2, 4])
@pytest.mark.parametrize("layout", ["lanes", "wide", "auto"])
class TestEngineBatchDifferential:
    def test_batch_matches_serial_runs(self, rate, layout):
        rng = random.Random(100 * rate + len(layout))
        machine = to_rate(compile_ruleset(RULES), rate) if rate > 1 else \
            compile_ruleset(RULES)
        lanes = rng.randint(2, 7)
        lane_streams = []
        limit = None
        for _ in range(lanes):
            vectors, limit = stream_for(machine, _noisy_data(rng))
            lane_streams.append(vectors)
        expected, histories = _serial_payloads(machine, lane_streams, limit)

        engine = BitsetEngine(machine)
        recorders = engine.run_batch(lane_streams, position_limit=limit,
                                     batch_layout=layout)
        assert [r.to_payload() for r in recorders] == expected
        assert [list(h) for h in engine.lane_histories] == histories
        assert any(p["total_reports"] for p in expected)

    def test_batch_with_caller_recorders(self, rate, layout):
        rng = random.Random(rate + len(layout))
        machine = to_rate(compile_ruleset(RULES[:3]), rate) if rate > 1 \
            else compile_ruleset(RULES[:3])
        lane_streams = []
        limit = None
        for _ in range(3):
            vectors, limit = stream_for(machine, _noisy_data(rng, 150))
            lane_streams.append(vectors)
        expected, _ = _serial_payloads(machine, lane_streams, limit)
        recorders = [ReportRecorder(position_limit=limit) for _ in range(3)]
        out = BitsetEngine(machine).run_batch(
            lane_streams, recorders=recorders, batch_layout=layout)
        assert out is recorders
        assert [r.to_payload() for r in recorders] == expected


class TestEngineBatchEdges:
    def test_unknown_layout_rejected(self, abc_automaton):
        with pytest.raises(SimulationError):
            BitsetEngine(abc_automaton).run_batch(
                [[97]], batch_layout="diagonal")

    def test_recorder_count_mismatch_rejected(self, abc_automaton):
        with pytest.raises(SimulationError):
            BitsetEngine(abc_automaton).run_batch(
                [[97], [98]], recorders=[ReportRecorder()])

    def test_empty_and_unequal_lane_lengths(self, abc_automaton):
        engine = BitsetEngine(abc_automaton)
        streams = [list(b"abcabc"), [], list(b"xxabc")]
        expected, _ = _serial_payloads(abc_automaton, streams)
        recorders = engine.run_batch(streams)
        assert [r.to_payload() for r in recorders] == expected

    def test_random_automata_both_layouts(self):
        rng = random.Random(777)
        for trial in range(6):
            machine = random_automaton(rng, n_states=rng.randint(4, 12))
            streams = [
                [rng.randrange(256) for _ in range(rng.randint(0, 60))]
                for _ in range(rng.randint(1, 5))]
            expected, _ = _serial_payloads(machine, streams)
            for layout in ("lanes", "wide"):
                recorders = BitsetEngine(machine).run_batch(
                    streams, batch_layout=layout)
                assert [r.to_payload() for r in recorders] == expected, \
                    (trial, layout)


@pytest.mark.parametrize("interleave", [True, False])
class TestEngineShardDifferential:
    def test_shard_stitch_matches_single_pass(self, interleave):
        rng = random.Random(42 if interleave else 43)
        machine = compile_ruleset(ACYCLIC_RULES)
        assert machine.depth_bound() is not None
        vectors, limit = stream_for(machine, _noisy_data(rng))
        serial_engine = BitsetEngine(machine)
        serial = serial_engine.run(vectors, position_limit=limit)
        serial_history = list(serial_engine.active_count_history)
        for shards in (2, 3, 5, 8):
            engine = BitsetEngine(machine)
            recorder = engine.run_sharded(vectors, shards,
                                          position_limit=limit,
                                          interleave=interleave)
            assert recorder.to_payload() == serial.to_payload(), shards
            assert list(engine.active_count_history) == serial_history

    def test_overlap_window_reports_not_duplicated(self, interleave):
        # Witnesses planted to straddle every shard boundary: the
        # overlap replay re-sees those cycles, and the stitcher must
        # count each report exactly once.
        machine = compile_ruleset(["abcd"])
        data = b"abcd" * 50
        vectors, limit = stream_for(machine, data)
        serial = BitsetEngine(machine).run(vectors, position_limit=limit)
        assert serial.total_reports == 50
        for shards in (2, 3, 7):
            recorder = BitsetEngine(machine).run_sharded(
                vectors, shards, position_limit=limit,
                interleave=interleave)
            assert recorder.to_payload() == serial.to_payload()

    def test_random_shard_boundaries_property(self, interleave):
        rng = random.Random(99 if interleave else 98)
        for trial in range(8):
            machine = random_automaton(rng, n_states=rng.randint(4, 10))
            if machine.depth_bound() is None:
                continue  # cyclic draws take the fallback path (below)
            stream = [rng.randrange(256) for _ in range(rng.randint(5, 120))]
            serial = BitsetEngine(machine).run(stream)
            shards = rng.randint(1, len(stream))
            recorder = BitsetEngine(machine).run_sharded(
                stream, shards, interleave=interleave)
            assert recorder.to_payload() == serial.to_payload(), \
                (trial, shards)

    def test_strided_machine_sharded(self, interleave):
        rng = random.Random(7)
        machine = to_rate(compile_ruleset(ACYCLIC_RULES[:4]), 4)
        vectors, limit = stream_for(machine, _noisy_data(rng))
        serial = BitsetEngine(machine).run(vectors, position_limit=limit)
        recorder = BitsetEngine(machine).run_sharded(
            vectors, 4, position_limit=limit, interleave=interleave)
        assert recorder.to_payload() == serial.to_payload()


class TestShardFallbacksAndPool:
    def test_cyclic_automaton_falls_back_to_serial(self):
        machine = compile_ruleset(["he(llo)+"])
        assert machine.depth_bound() is None
        data = b"hellollo hello " * 10
        serial = BitsetEngine(machine).run(list(data))
        recorder = BitsetEngine(machine).run_sharded(list(data), 4)
        assert recorder.to_payload() == serial.to_payload()

    def test_single_shard_is_plain_run(self):
        machine = compile_ruleset(["abc"])
        data = list(b"zabcz")
        serial = BitsetEngine(machine).run(data)
        recorder = BitsetEngine(machine).run_sharded(data, 1)
        assert recorder.to_payload() == serial.to_payload()

    def test_shards_clamped_to_stream_length(self):
        machine = compile_ruleset(["ab"])
        data = list(b"abab")
        serial = BitsetEngine(machine).run(data)
        recorder = BitsetEngine(machine).run_sharded(data, 100)
        assert recorder.to_payload() == serial.to_payload()

    def test_pool_runner_path_bit_exact(self):
        rng = random.Random(31)
        machine = compile_ruleset(ACYCLIC_RULES)
        vectors, limit = stream_for(machine, _noisy_data(rng, 600))
        serial_engine = BitsetEngine(machine)
        serial = serial_engine.run(vectors, position_limit=limit)
        engine = BitsetEngine(machine)
        recorder = engine.run_sharded(
            vectors, 4, position_limit=limit,
            runner=ParallelRunner(workers=2))
        assert recorder.to_payload() == serial.to_payload()
        assert (list(engine.active_count_history)
                == list(serial_engine.active_count_history))

    def test_auto_shards_short_stream_falls_back_serial(self):
        from repro.sim import engine as engine_module
        machine = compile_ruleset(["abc"])
        data = list(b"zabcz" * 20)
        assert len(data) < engine_module.AUTO_SHARD_MIN_CYCLES
        serial = BitsetEngine(machine).run(data)
        recorder = BitsetEngine(machine).run_sharded(data, "auto")
        assert recorder.to_payload() == serial.to_payload()

    def test_auto_shards_long_stream_shards_bit_exact(self, monkeypatch):
        from repro.sim import engine as engine_module
        monkeypatch.setattr(engine_module, "AUTO_SHARD_MIN_CYCLES", 64)
        rng = random.Random(5)
        machine = compile_ruleset(ACYCLIC_RULES)
        vectors, limit = stream_for(machine, _noisy_data(rng, 200))
        serial = BitsetEngine(machine).run(vectors, position_limit=limit)
        recorder = BitsetEngine(machine).run_sharded(
            vectors, "auto", position_limit=limit)
        assert recorder.to_payload() == serial.to_payload()

    def test_auto_shards_sizing(self):
        from repro.sim.engine import (AUTO_SHARD_DEFAULT,
                                      AUTO_SHARD_MIN_CYCLES, BitsetEngine)
        assert BitsetEngine._auto_shards(AUTO_SHARD_MIN_CYCLES - 1,
                                         None) == 1
        assert BitsetEngine._auto_shards(AUTO_SHARD_MIN_CYCLES,
                                         None) == AUTO_SHARD_DEFAULT
        runner = ParallelRunner(workers=3)
        assert BitsetEngine._auto_shards(AUTO_SHARD_MIN_CYCLES,
                                         runner) == 3

    def test_auto_shards_stage_param_bit_exact(self):
        """``shards="auto"`` flows through the experiment stage params."""
        from repro.experiments.table1 import simulation_params
        from repro.runtime.stages import canonical, get_stage
        from repro.workloads import generate

        params = simulation_params({"name": "ExactMatch"}, shards="auto")
        assert params["shards"] == "auto"
        assert canonical(params) != canonical({"name": "ExactMatch"})
        instance = generate("ExactMatch", 0.002, 0)
        sim8 = get_stage("simulate8").func
        plain = sim8({"name": "ExactMatch"}, instance)
        auto = sim8(params, instance)
        assert auto.recorder.events == plain.recorder.events
        assert auto.cycles == plain.cycles


@pytest.mark.parametrize("rate", [1, 2, 4])
class TestDeviceBatchDifferential:
    def test_device_batch_matches_serial_devices(self, rate):
        rng = random.Random(rate * 17)
        machine = to_rate(compile_ruleset(RULES), rate)
        config = SunderConfig(rate_nibbles=rate, report_bits=16)
        lanes = rng.randint(2, 5)
        data = _noisy_data(rng)
        cut = len(data) // lanes
        lane_streams = []
        limit = None
        for index in range(lanes):
            vectors, limit = stream_for(machine, data[index * cut:
                                                      (index + 1) * cut])
            lane_streams.append(vectors)
        expected = []
        for vectors in lane_streams:
            device = SunderDevice(config, fidelity="packed")
            device.configure(machine)
            result = device.run(vectors, position_limit=limit)
            reports = result.reports()
            expected.append((reports.total_reports,
                             dict(reports.reports_per_cycle),
                             sorted(e.key() for e in reports.events)))
        device = SunderDevice(config, fidelity="packed")
        device.configure(machine)
        recorders = device.run_batch(lane_streams, position_limit=limit)
        got = [(r.total_reports, dict(r.reports_per_cycle),
                sorted(e.key() for e in r.events)) for r in recorders]
        assert got == expected
        # The batched path must not disturb the device's streaming state.
        assert device.global_cycle == 0

    def test_device_batch_events_in_cycle_order(self, rate):
        # Unlike the archive-reconstruction path, batched lanes decode
        # reports inline, so each lane's events arrive in cycle order.
        machine = to_rate(compile_ruleset(["abc"]), rate)
        vectors, limit = stream_for(machine, b"xxabcxxabcxx")
        device = SunderDevice(
            SunderConfig(rate_nibbles=rate, report_bits=16),
            fidelity="packed")
        device.configure(machine)
        [recorder] = device.run_batch([vectors], position_limit=limit)
        cycles = [event.cycle for event in recorder.events]
        assert cycles == sorted(cycles)
        assert recorder.total_reports == 2


class TestDeviceBatchEdges:
    def test_literal_fidelity_rejected(self):
        machine = to_rate(compile_ruleset(["ab"]), 4)
        device = SunderDevice(
            SunderConfig(rate_nibbles=4, report_bits=16),
            fidelity="literal")
        device.configure(machine)
        with pytest.raises(ArchitectureError):
            device.run_batch([[(0, 0, 0, 0)]])

    def test_unconfigured_device_rejected(self):
        device = SunderDevice(SunderConfig(rate_nibbles=4, report_bits=16))
        with pytest.raises(ArchitectureError):
            device.run_batch([[(0, 0, 0, 0)]])


class TestMultiRoundBatch:
    def test_multi_round_batch_matches_serial_rounds(self):
        machine = to_rate(compile_ruleset(RULES), 4)
        config = SunderConfig(rate_nibbles=4, report_bits=16)
        rng = random.Random(5)
        data = _noisy_data(rng, 200)
        streams, limit = [], None
        for cut in range(3):
            vectors, limit = stream_for(machine, data[cut * 60:
                                                      (cut + 1) * 60])
            streams.append(vectors)
        serial = [run_multi_round(machine, vectors, config, max_clusters=8,
                                  position_limit=limit, fidelity="packed")
                  for vectors in streams]
        batched = run_multi_round(machine, streams, config, max_clusters=8,
                                  position_limit=limit, fidelity="packed",
                                  batch=True)
        assert batched.rounds == serial[0].rounds
        assert batched.stall_cycles == 0
        assert batched.stream_cycles == sum(len(s) for s in streams)
        assert len(batched.recorder) == len(streams)
        for part, reference in zip(batched.recorder, serial):
            assert part.total_reports == reference.recorder.total_reports
            assert (sorted(e.key() for e in part.events)
                    == sorted(e.key() for e in reference.recorder.events))


class TestDepthBound:
    def test_linear_chain(self):
        machine = compile_ruleset(["abcd"])
        assert machine.depth_bound() == 3

    def test_cyclic_is_none(self):
        machine = compile_ruleset(["a(bc)+d"])
        assert machine.depth_bound() is None

    def test_self_loop_is_none(self, rng):
        machine = random_automaton(rng, n_states=3, edge_density=0.0)
        first = next(iter(machine.states()))
        machine.add_transition(first.id, first.id)
        assert machine.depth_bound() is None

    def test_empty_automaton(self):
        from repro.automata import Automaton
        machine = Automaton(name="empty", bits=8)
        assert machine.depth_bound() == 0


class TestStageKeysAndCache:
    def test_batch_and_shards_salt_simulate_keys(self):
        from repro.experiments import table1
        from repro.runtime import StageGraph

        def sim_key(**kwargs):
            graph = StageGraph()
            table1.define(graph, 0.002, 0, ["Snort"], **kwargs)
            [sim] = [task for task in graph.order
                     if task.stage.name == "simulate8"]
            return sim.key

        plain = sim_key()
        assert sim_key(batch=1, shards=1) == plain  # pre-change key shape
        keys = {plain, sim_key(batch=4), sim_key(batch=8), sim_key(shards=3),
                sim_key(shards=4)}
        assert len(keys) == 5

    def test_warm_store_hits_for_same_batch_params(self, tmp_path):
        from repro import obs
        from repro.experiments import table1
        from repro.runtime import Runtime, StageGraph
        from repro.runtime import store as runtime_store

        def run_simulate(batch):
            graph = StageGraph()
            table1.define(graph, 0.002, 0, ["Snort"], batch=batch)
            [sim] = [task for task in graph.order
                     if task.stage.name == "simulate8"]
            results = Runtime().execute(graph, targets=[sim])
            return results[sim]

        store_dir = str(tmp_path / "artifacts")
        try:
            runtime_store.configure(directory=store_dir)
            cold = run_simulate(batch=4)
            # Fresh store on the same directory drops the memory tier:
            # the warm run is served purely by on-disk artifacts.
            runtime_store.configure(directory=store_dir)
            registry = obs.MetricsRegistry()
            with obs.collecting(registry=registry):
                warm = run_simulate(batch=4)
                different = run_simulate(batch=8)
        finally:
            runtime_store.configure()
        assert warm.recorder.to_payload() == cold.recorder.to_payload()
        assert different.recorder.to_payload() == cold.recorder.to_payload()
        misses = registry.get("repro_runtime_stage_misses_total")
        hits = registry.get("repro_runtime_stage_hits_total")
        # Same batch param: pure hit.  Different batch param: new key,
        # so it executes (a miss) even on the warm store.
        assert hits.labels(stage="simulate8").value == 1
        assert misses.labels(stage="simulate8").value == 1

    def test_experiment_rows_identical_across_strategies(self):
        from repro.experiments import table1
        plain = table1.run(scale=0.002, seed=0, names=["Snort", "SPM"])
        batched = table1.run(scale=0.002, seed=0, names=["Snort", "SPM"],
                             batch=4)
        sharded = table1.run(scale=0.002, seed=0, names=["Snort", "SPM"],
                             shards=3)
        assert plain == batched == sharded
