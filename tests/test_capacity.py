"""Capacity-planning tests."""

import pytest

from repro.core.capacity import plan_rates, recommend_rate
from repro.errors import CapacityError
from repro.regex import compile_ruleset


@pytest.fixture(scope="module")
def small_machine():
    return compile_ruleset(["alpha[0-9]", "beta.", "gamma+"])


@pytest.fixture(scope="module")
def big_machine():
    # Large enough to need multiple rounds on a 1-cluster device at
    # higher rates (reporting columns are the bottleneck: 12 per PU).
    return compile_ruleset(["pattern%03d[a-z]{8}" % i for i in range(120)])


class TestPlanRates:
    def test_all_rates_for_small_machine(self, small_machine):
        plans = plan_rates(small_machine, device_clusters=4)
        assert set(plans) == {1, 2, 4}
        for rate, plan in plans.items():
            assert plan.rounds == 1
            assert plan.gbps_nominal == pytest.approx(14.46 * rate, rel=0.01)
            assert plan.effective_gbps == plan.gbps_nominal

    def test_report_rows_shrink_with_rate(self, small_machine):
        plans = plan_rates(small_machine, device_clusters=4)
        assert plans[1].report_rows > plans[2].report_rows > plans[4].report_rows

    def test_rounds_appear_when_device_small(self, big_machine):
        plans = plan_rates(big_machine, device_clusters=1)
        assert any(plan.rounds > 1 for plan in plans.values())

    def test_plan_dict_roundtrip(self, small_machine):
        plans = plan_rates(small_machine, device_clusters=2)
        record = plans[4].as_dict()
        assert record["rate"] == 4
        assert record["effective_gbps"] == plans[4].effective_gbps


class TestRecommendation:
    def test_small_machine_prefers_fastest_rate(self, small_machine):
        best, _ = recommend_rate(small_machine, device_clusters=4)
        assert best.rate == 4  # no round penalty -> highest throughput

    def test_round_penalty_can_flip_the_choice(self, big_machine):
        best_large, plans_large = recommend_rate(big_machine,
                                                 device_clusters=32)
        best_small, plans_small = recommend_rate(big_machine,
                                                 device_clusters=1)
        # With a big device the fastest single-round rate wins; with a
        # tiny device the effective (round-divided) throughput decides.
        assert plans_large[best_large.rate].rounds == 1
        assert best_large.effective_gbps == max(
            plan.effective_gbps for plan in plans_large.values()
        )
        assert best_small.effective_gbps == max(
            plan.effective_gbps for plan in plans_small.values()
        )
        # The small device needs strictly more rounds at the highest rate.
        assert plans_small[4].rounds > plans_large[4].rounds

    def test_impossible_machine_rejected(self):
        # One gigantic connected component: no rate can place it.
        from repro.automata import Automaton, SymbolSet
        machine = Automaton(bits=8)
        previous = None
        for index in range(6000):
            state_id = "s%d" % index
            machine.new_state(
                state_id, SymbolSet.single(8, index % 256),
                start="all-input" if index == 0 else "none",
                report=index == 5999,
                report_code="end" if index == 5999 else None,
            )
            if previous:
                machine.add_transition(previous, state_id)
            previous = state_id
        with pytest.raises(CapacityError):
            plan_rates(machine, device_clusters=2)
