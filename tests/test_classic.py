"""Classic-NFA homogenization tests (paper Figure 1)."""

import random

import pytest

from repro.automata import SymbolSet
from repro.automata.classic import ClassicNfa, figure1_example
from repro.errors import AutomatonError
from repro.sim import BitsetEngine


def _homogeneous_hits(automaton, symbols):
    recorder = BitsetEngine(automaton).run(list(symbols))
    return {(event.position, event.report_code) for event in recorder.events}


def _random_classic(rng, n_states=5, n_edges=10, bits=4):
    nfa = ClassicNfa("rand")
    ids = ["q%d" % index for index in range(n_states)]
    for index, state_id in enumerate(ids):
        nfa.add_state(
            state_id,
            initial=index == 0,
            accepting=index != 0 and rng.random() < 0.4,
        )
    for _ in range(n_edges):
        label = SymbolSet.of(
            bits, rng.sample(range(1 << bits), rng.randint(1, 4))
        )
        nfa.add_edge(rng.choice(ids), label, rng.choice(ids))
    return nfa


class TestFigure1:
    def test_example_accepts_like_the_figure(self):
        nfa = figure1_example()
        assert nfa.simulate(b"AG") == {(1, "match")}
        assert nfa.simulate(b"ACG") == {(2, "match")}
        assert nfa.simulate(b"ATTCG") == {(4, "match")}
        assert nfa.simulate(b"CG") == set()

    def test_homogenized_matches_classic(self):
        nfa = figure1_example()
        machine = nfa.homogenize()
        for data in (b"AG", b"ACG", b"ATTCG", b"CG", b"AAAG", b"A", b""):
            assert _homogeneous_hits(machine, data) == nfa.simulate(data), data


class TestHomogenize:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_classic_equivalence(self, seed):
        rng = random.Random(seed)
        nfa = _random_classic(rng)
        try:
            machine = nfa.homogenize(bits=4)
        except AutomatonError:
            # No edges from initial states, or unreachable accepts: the
            # homogenizer legitimately produced an empty machine.
            return
        for _ in range(10):
            data = [rng.randrange(16) for _ in range(rng.randint(0, 15))]
            assert _homogeneous_hits(machine, data) == nfa.simulate(data), (
                seed, data,
            )

    def test_homogeneous_property_holds(self):
        machine = figure1_example().homogenize(minimized=False)
        # By construction every STE has exactly one label (arity 1), and
        # all incoming transitions share it — check via predecessors.
        for state in machine:
            assert state.arity == 1

    def test_streaming_mode_uses_all_input(self):
        from repro.automata import StartKind
        machine = figure1_example().homogenize(streaming=True)
        kinds = {s.start for s in machine.start_states()}
        assert kinds == {StartKind.ALL_INPUT}
        # Streaming finds the match at any offset.
        assert _homogeneous_hits(machine, b"TTAGTT") == {(3, "match")}

    def test_accepting_initial_rejected(self):
        nfa = ClassicNfa()
        nfa.add_state("q0", initial=True, accepting=True)
        nfa.add_state("q1")
        nfa.add_edge("q0", SymbolSet.full(8), "q1")
        with pytest.raises(AutomatonError):
            nfa.homogenize()

    def test_empty_edge_label_rejected(self):
        nfa = ClassicNfa()
        nfa.add_state("a", initial=True)
        nfa.add_state("b")
        with pytest.raises(AutomatonError):
            nfa.add_edge("a", SymbolSet.empty(8), "b")

    def test_unknown_state_rejected(self):
        nfa = ClassicNfa()
        nfa.add_state("a", initial=True)
        with pytest.raises(AutomatonError):
            nfa.add_edge("a", SymbolSet.full(8), "ghost")

    def test_feeds_the_transform_pipeline(self):
        from repro.transform import check_equivalent, to_rate
        machine = figure1_example().homogenize()
        strided = to_rate(machine, 4)
        for data in (b"AG", b"ACG", b"ATTCG", b"TTTT"):
            check_equivalent(machine, strided, data)
