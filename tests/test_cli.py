"""CLI tests (argument wiring and end-to-end command behaviour)."""

import pytest

from repro.cli import main


class TestCompile:
    def test_summary(self, capsys):
        assert main(["compile", "abc"]) == 0
        out = capsys.readouterr().out
        assert "3 states" in out

    def test_anml_output(self, capsys):
        assert main(["compile", "ab", "--format", "anml"]) == 0
        assert "state-transition-element" in capsys.readouterr().out

    def test_mnrl_output(self, capsys):
        assert main(["compile", "ab", "--format", "mnrl"]) == 0
        assert '"hState"' in capsys.readouterr().out

    def test_dot_output(self, capsys):
        assert main(["compile", "ab", "--format", "dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_bad_pattern_reports_error(self, capsys):
        assert main(["compile", "a(("]) == 2
        assert "error:" in capsys.readouterr().err


class TestMatch:
    def test_text_matching(self, capsys):
        assert main(["match", "lo wo", "--text", "hello world"]) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines() == ["7\tlo wo"]
        assert "1 matches" in captured.err

    def test_file_matching(self, tmp_path, capsys):
        path = tmp_path / "input.bin"
        path.write_bytes(b"xx needle xx needle")
        assert main(["match", "needle", "--file", str(path),
                     "--rate", "2"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines() == ["8\tneedle", "18\tneedle"]

    def test_byte_offsets_identical_across_rates(self, capsys):
        # positions are derived from the machine geometry, not hardcoded
        for rate in ("1", "2", "4"):
            assert main(["match", "needle", "--text", "xx needle xx needle",
                         "--rate", rate]) == 0
            out = capsys.readouterr().out
            assert out.splitlines() == ["8\tneedle", "18\tneedle"], rate


class TestOtherCommands:
    def test_transform(self, capsys):
        assert main(["transform", "ab[0-9]c"]) == 0
        out = capsys.readouterr().out
        assert "1 nibble(s):" in out and "4 nibble(s):" in out

    def test_trace(self, capsys):
        assert main(["trace", "ab", "--text", "xab"]) == 0
        assert "REPORT" in capsys.readouterr().out

    def test_workload(self, capsys):
        assert main(["workload", "Bro217", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "report_cycle_pct" in out

    def test_experiment_table5(self, capsys):
        assert main(["experiment", "table5"]) == 0
        assert "Sunder (14nm)" in capsys.readouterr().out

    def test_experiment_with_scale(self, capsys):
        assert main(["experiment", "table1", "--scale", "0.002"]) == 0
        assert "Snort" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestPlanAndCompare:
    def test_plan_recommends_a_rate(self, capsys):
        assert main(["plan", "abc", "--clusters", "4"]) == 0
        out = capsys.readouterr().out
        assert "<- recommended" in out
        assert "effective Gbps" in out

    def test_compare_reports_overheads(self, capsys):
        assert main(["compare", "ab", "--text", "xxabxxab"]) == 0
        out = capsys.readouterr().out
        assert "Sunder (16-bit)" in out
        assert "AP+RAD" in out

    def test_compare_from_file(self, tmp_path, capsys):
        path = tmp_path / "input.bin"
        path.write_bytes(b"needle " * 30)
        assert main(["compare", "needle", "--file", str(path)]) == 0
        assert "reporting overhead" in capsys.readouterr().out


class TestProfile:
    def test_profile_workload_writes_metrics_and_trace(self, tmp_path, capsys):
        import json

        from repro.obs import validate_snapshot

        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.json"
        assert main(["profile", "workload", "Bro217", "--scale", "0.002",
                     "--metrics-out", str(metrics),
                     "--trace-out", str(trace)]) == 0
        captured = capsys.readouterr()
        assert "report_cycle_pct" in captured.out
        assert "profile:" in captured.err
        snapshot = json.loads(metrics.read_text())
        validate_snapshot(snapshot)
        names = [m["name"] for m in snapshot["metrics"]]
        assert "repro_engine_cycles_total" in names
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(e["name"] == "cli.workload" for e in events)

    def test_profile_without_flags_prints_exposition(self, capsys):
        assert main(["profile", "experiment", "table5"]) == 0
        captured = capsys.readouterr()
        assert "# TYPE repro_experiment_runs_total counter" in captured.err
        assert 'repro_experiment_runs_total{experiment="table5"} 1' \
            in captured.err

    def test_profile_requires_a_command(self, capsys):
        assert main(["profile"]) == 2
        assert "requires a command" in capsys.readouterr().err

    def test_profile_cannot_nest(self, capsys):
        assert main(["profile", "profile", "experiment", "table5"]) == 2
        assert "cannot wrap itself" in capsys.readouterr().err

    def test_flags_work_without_profile_wrapper(self, tmp_path):
        import json

        from repro.obs import validate_snapshot

        metrics = tmp_path / "m.json"
        assert main(["match", "ab", "--text", "xxab",
                     "--metrics-out", str(metrics)]) == 0
        snapshot = json.loads(metrics.read_text())
        validate_snapshot(snapshot)
        by_name = {m["name"]: m for m in snapshot["metrics"]}
        cycles = by_name["repro_device_cycles_total"]["samples"][0]["value"]
        assert cycles > 0

    def test_detaches_after_run(self):
        from repro.obs import OBS

        assert main(["profile", "experiment", "table5"]) == 0
        assert not OBS.active

    def test_profile_forwards_root_flags(self, tmp_path):
        """Root flags before ``profile`` reach the wrapped command.

        ``profile`` re-parses its wrapped argv, which starts at the
        subcommand — ``--prefilter`` given before ``profile`` must be
        copied onto the inner namespace or the gated run silently runs
        ungated.
        """
        import json

        metrics = tmp_path / "m.json"
        assert main(["--prefilter", "profile", "match", "needle",
                     "--text", "xxxneedleyy",
                     "--metrics-out", str(metrics)]) == 0
        snapshot = json.loads(metrics.read_text())
        by_name = {m["name"]: m for m in snapshot["metrics"]}
        scanned = by_name["repro_prefilter_scan_bytes_total"]["samples"]
        assert scanned and scanned[0]["value"] > 0
