"""CLI tests (argument wiring and end-to-end command behaviour)."""

import pytest

from repro.cli import main


class TestCompile:
    def test_summary(self, capsys):
        assert main(["compile", "abc"]) == 0
        out = capsys.readouterr().out
        assert "3 states" in out

    def test_anml_output(self, capsys):
        assert main(["compile", "ab", "--format", "anml"]) == 0
        assert "state-transition-element" in capsys.readouterr().out

    def test_mnrl_output(self, capsys):
        assert main(["compile", "ab", "--format", "mnrl"]) == 0
        assert '"hState"' in capsys.readouterr().out

    def test_dot_output(self, capsys):
        assert main(["compile", "ab", "--format", "dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_bad_pattern_reports_error(self, capsys):
        assert main(["compile", "a(("]) == 2
        assert "error:" in capsys.readouterr().err


class TestMatch:
    def test_text_matching(self, capsys):
        assert main(["match", "lo wo", "--text", "hello world"]) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines() == ["7\tlo wo"]
        assert "1 matches" in captured.err

    def test_file_matching(self, tmp_path, capsys):
        path = tmp_path / "input.bin"
        path.write_bytes(b"xx needle xx needle")
        assert main(["match", "needle", "--file", str(path),
                     "--rate", "2"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines() == ["8\tneedle", "18\tneedle"]


class TestOtherCommands:
    def test_transform(self, capsys):
        assert main(["transform", "ab[0-9]c"]) == 0
        out = capsys.readouterr().out
        assert "1 nibble(s):" in out and "4 nibble(s):" in out

    def test_trace(self, capsys):
        assert main(["trace", "ab", "--text", "xab"]) == 0
        assert "REPORT" in capsys.readouterr().out

    def test_workload(self, capsys):
        assert main(["workload", "Bro217", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "report_cycle_pct" in out

    def test_experiment_table5(self, capsys):
        assert main(["experiment", "table5"]) == 0
        assert "Sunder (14nm)" in capsys.readouterr().out

    def test_experiment_with_scale(self, capsys):
        assert main(["experiment", "table1", "--scale", "0.002"]) == 0
        assert "Snort" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestPlanAndCompare:
    def test_plan_recommends_a_rate(self, capsys):
        assert main(["plan", "abc", "--clusters", "4"]) == 0
        out = capsys.readouterr().out
        assert "<- recommended" in out
        assert "effective Gbps" in out

    def test_compare_reports_overheads(self, capsys):
        assert main(["compare", "ab", "--text", "xxabxxab"]) == 0
        out = capsys.readouterr().out
        assert "Sunder (16-bit)" in out
        assert "AP+RAD" in out

    def test_compare_from_file(self, tmp_path, capsys):
        path = tmp_path / "input.bin"
        path.write_bytes(b"needle " * 30)
        assert main(["compare", "needle", "--file", str(path)]) == 0
        assert "reporting overhead" in capsys.readouterr().out
