"""Per-flow context switching tests (multi-stream NIDS use case)."""

import pytest

from repro.core import SunderConfig, SunderDevice
from repro.errors import ArchitectureError
from repro.regex import compile_ruleset
from repro.sim import BitsetEngine, stream_for
from repro.transform import to_rate


@pytest.fixture
def configured():
    machine = to_rate(compile_ruleset([("attack", "A"), ("probe", "P")]), 2)
    device = SunderDevice(SunderConfig(rate_nibbles=2, report_bits=16))
    device.configure(machine)
    return device, machine


def _vectors(machine, data):
    return stream_for(machine, data)


class TestContextSwitching:
    def test_interleaved_flows_match_isolated_runs(self, configured):
        device, machine = configured
        # Two flows whose matches straddle the interleaving boundary:
        # byte-per-cycle at rate 2, so contexts swap mid-pattern.
        flow_a = b"xx attack yy"
        flow_b = b"pro" + b"be probe"
        va, limit_a = _vectors(machine, flow_a)
        vb, limit_b = _vectors(machine, flow_b)

        context_a = device.save_context()
        context_b = device.save_context()

        def run_chunk(vectors, context):
            device.load_context(context)
            for vector in vectors:
                device.step(vector)
            return device.save_context()

        # Interleave in chunks of 4 cycles.
        chunk = 4
        ia = ib = 0
        while ia < len(va) or ib < len(vb):
            if ia < len(va):
                context_a = run_chunk(va[ia:ia + chunk], context_a)
                ia += chunk
            if ib < len(vb):
                context_b = run_chunk(vb[ib:ib + chunk], context_b)
                ib += chunk

        got = device.report_events().event_keys()
        want_a = BitsetEngine(machine).run(va, position_limit=limit_a)
        want_b = BitsetEngine(machine).run(vb, position_limit=limit_b)
        want = want_a.event_keys() | want_b.event_keys()
        assert got == want
        # Both flows actually matched something across chunk boundaries.
        assert any(code == "A" for _, code in got)
        assert any(code == "P" for _, code in got)

    def test_reset_clears_partial_matches(self, configured):
        device, machine = configured
        vectors, _ = _vectors(machine, b"atta")  # half an 'attack'
        for vector in vectors:
            device.step(vector)
        device.reset_matching_state()
        vectors2, limit2 = _vectors(machine, b"ck zz")
        for vector in vectors2:
            device.step(vector)
        # The suffix alone must not fire a report.
        assert device.report_events().event_keys() == set()

    def test_load_context_requires_configuration(self):
        device = SunderDevice()
        with pytest.raises(ArchitectureError):
            device.load_context({"global_cycle": 0, "enables": []})

    def test_describe_mentions_layout(self, configured):
        device, machine = configured
        text = device.describe()
        assert "rate=2 nibbles" in text
        assert "reporting" in text
        assert "cluster 0 PU 0" in text

    def test_describe_unconfigured(self):
        assert "unconfigured" in SunderDevice().describe()
