"""Device-level tests: the bit-faithful hardware path vs the functional engine."""

import random

import pytest

from repro.automata import Automaton, SymbolSet
from repro.core import SunderConfig, SunderDevice
from repro.errors import ArchitectureError
from repro.regex import compile_ruleset
from repro.sim import BitsetEngine, stream_for
from repro.transform import to_rate

RULES = ["abc", "b.d", "xy+z", "hello", "[0-9]{3}", "q(rs|tu)v"]
DATA_ALPHABET = b"abcdxyz hello0123qrstuv"


def _run_both(automaton, data, config):
    device = SunderDevice(config)
    device.configure(automaton)
    vectors, limit = stream_for(automaton, data)
    result = device.run(vectors, position_limit=limit)
    hardware = result.reports().event_keys()
    reference = BitsetEngine(automaton).run(
        vectors, position_limit=limit
    ).event_keys()
    return hardware, reference, device, result


@pytest.mark.parametrize("rate", [1, 2, 4])
class TestDifferentialVsEngine:
    def test_reports_identical(self, rate):
        rng = random.Random(rate * 7)
        machine = compile_ruleset(RULES)
        strided = to_rate(machine, rate)
        config = SunderConfig(rate_nibbles=rate, report_bits=16)
        noise = bytes(rng.choice(DATA_ALPHABET) for _ in range(120))
        data = noise + b"abc" + noise + b" hello 123 " + noise + b"xyyz"
        hardware, reference, _, _ = _run_both(strided, data, config)
        assert hardware == reference
        assert hardware  # the stream must actually exercise reporting

    def test_reports_identical_with_fifo_drain(self, rate):
        rng = random.Random(rate * 13)
        machine = compile_ruleset(RULES[:3])
        strided = to_rate(machine, rate)
        config = SunderConfig(rate_nibbles=rate, report_bits=16, fifo=True,
                              fifo_drain_rows_per_cycle=0.5)
        data = bytes(rng.choice(DATA_ALPHABET) for _ in range(200))
        hardware, reference, _, _ = _run_both(strided, data, config)
        assert hardware == reference


class TestReportPath:
    def test_reports_survive_forced_flushes(self):
        # A tiny reporting region forces many flushes; the host archive
        # plus the live region must still reconstruct every report.
        machine = compile_ruleset(["ab"])
        strided = to_rate(machine, 4)
        config = SunderConfig(rate_nibbles=4, report_bits=16,
                              metadata_bits=224, fifo=False)
        assert config.report_capacity == config.report_rows  # 1 entry/row
        data = b"ab" * 450  # 450 report cycles > 192-entry capacity
        hardware, reference, device, _ = _run_both(strided, data, config)
        assert hardware == reference
        stats = device.statistics()
        assert stats["flushes"] >= 1

    def test_metadata_unwrap_across_wraparound(self):
        # 4-bit metadata counter wraps every 16 cycles; reconstruction
        # must unwrap it correctly over a much longer run.
        machine = compile_ruleset(["ab"])
        strided = to_rate(machine, 4)
        config = SunderConfig(rate_nibbles=4, report_bits=16,
                              metadata_bits=4, fifo=False)
        data = b"ab" * 120
        hardware, reference, _, _ = _run_both(strided, data, config)
        assert hardware == reference

    def test_summarize_all(self):
        machine = compile_ruleset(["ab", "zz"])
        strided = to_rate(machine, 4)
        # FIFO off: summarization reads what is resident in the region.
        config = SunderConfig(rate_nibbles=4, report_bits=16, fifo=False)
        device = SunderDevice(config)
        device.configure(strided)
        vectors, limit = stream_for(strided, b"xxabxxabxx")
        device.run(vectors, position_limit=limit)
        summary, stall = device.summarize_all()
        reported_codes = {
            strided.state(state_id).report_code for state_id in summary
        }
        assert reported_codes == {0}  # rule 0 ("ab") fired, rule 1 did not
        assert stall >= config.summarize_stall_cycles

    def test_slowdown_accounts_stalls(self):
        machine = compile_ruleset(["ab"])
        strided = to_rate(machine, 4)
        config = SunderConfig(rate_nibbles=4, report_bits=16,
                              metadata_bits=224, fifo=False,
                              flush_rows_per_cycle=1)
        device = SunderDevice(config)
        device.configure(strided)
        vectors, limit = stream_for(strided, b"ab" * 400)
        result = device.run(vectors, position_limit=limit)
        assert result.slowdown > 1.0


class TestConfigurationErrors:
    def test_byte_automaton_rejected(self, small_ruleset):
        device = SunderDevice(SunderConfig())
        with pytest.raises(ArchitectureError):
            device.configure(small_ruleset)

    def test_step_before_configure_rejected(self):
        with pytest.raises(ArchitectureError):
            SunderDevice().step((0, 0, 0, 0))

    def test_multi_pu_automaton_uses_global_switch(self):
        # A >256-state connected component must span PUs and still match.
        automaton = Automaton(bits=4, arity=1, start_period=2)
        previous = None
        length = 300
        for index in range(length):
            state_id = "s%d" % index
            automaton.new_state(
                state_id, SymbolSet.of(4, [index % 16]),
                start="all-input" if index == 0 else "none",
                report=index == length - 1,
                report_code="end" if index == length - 1 else None,
            )
            if previous:
                automaton.add_transition(previous, state_id)
            previous = state_id
        config = SunderConfig(rate_nibbles=1, report_bits=12)
        device = SunderDevice(config)
        placement = device.configure(automaton)
        assert len(placement.pus_used()) >= 2
        stream = [index % 16 for index in range(length)]
        result = device.run(stream, position_limit=length)
        keys = result.reports().event_keys()
        assert keys == {(length - 1, "end")}
