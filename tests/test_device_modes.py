"""Device-mode and selective-reporting tests."""

import pytest

from repro.core import SunderConfig, SunderDevice
from repro.errors import ArchitectureError
from repro.regex import compile_ruleset
from repro.sim import stream_for
from repro.transform import to_rate


@pytest.fixture
def device_and_stream():
    machine = to_rate(compile_ruleset([("ab", "AB"), ("zz", "ZZ")]), 2)
    device = SunderDevice(SunderConfig(rate_nibbles=2, report_bits=16))
    device.configure(machine)
    vectors, limit = stream_for(machine, b"ab zz ab")
    return device, vectors, limit


class TestModes:
    def test_normal_mode_blocks_matching(self, device_and_stream):
        device, vectors, _ = device_and_stream
        device.set_mode("normal")
        with pytest.raises(ArchitectureError):
            device.step(vectors[0])
        device.set_mode("automata")
        device.step(vectors[0])  # works again

    def test_invalid_mode_rejected(self, device_and_stream):
        device, _, _ = device_and_stream
        with pytest.raises(ArchitectureError):
            device.set_mode("turbo")

    def test_normal_mode_host_access_still_works(self, device_and_stream):
        from repro.core import HostInterface
        device, vectors, _ = device_and_stream
        for vector in vectors:
            device.step(vector)
        device.set_mode("normal")
        host = HostInterface(device)
        address = host.address_map.address_of(0, 0, 0)
        assert host.load_row(address) is not None


class TestLiveReportStatus:
    def test_status_tracks_current_cycle(self, device_and_stream):
        device, vectors, _ = device_and_stream
        # 'ab' occupies the first vector cycle (one byte per cycle at
        # rate 2): after cycle 0 only 'a' matched, after cycle 1 'ab'
        # completed and the AB report state is live.
        device.step(vectors[0])  # 'a'
        assert device.live_report_status() == {}
        device.step(vectors[1])  # 'b' -> AB fires
        status = device.live_report_status()
        codes = {device.automaton.state(s).report_code for s in status}
        assert codes == {"AB"}
        device.step(vectors[2])  # ' ' -> nothing live
        assert device.live_report_status() == {}
