"""Packed-fidelity differential suite: packed vs literal vs the engines.

The packed kernel (:mod:`repro.core.packed`) must be *bit-exact* against
the literal bit-level device — same reports, cycles, stalls, and access
statistics — and both must match the functional engines.  The sweeps
here randomize the input stream and cover every rate and both drain
strategies.
"""

import random

import pytest

from repro.core import (
    FIDELITIES,
    SunderConfig,
    SunderDevice,
    load_device,
    save_device,
)
from repro.core.host import HostInterface
from repro.errors import ArchitectureError
from repro.hwmodel.energy import device_energy
from repro.regex import compile_ruleset
from repro.sim import BitsetEngine, NaiveEngine, stream_for
from repro.transform import to_rate

RULES = ["abc", "b.d", "xy+z", "hello", "[0-9]{3}", "q(rs|tu)v"]
DATA_ALPHABET = b"abcdxyz hello0123qrstuv"


def _random_data(seed, length=300):
    rng = random.Random(seed)
    noise = bytes(rng.choice(DATA_ALPHABET) for _ in range(length))
    return noise + b"abc hello 123 " + noise + b"xyyzqrsv"


def _config(rate, fifo):
    return SunderConfig(rate_nibbles=rate, report_bits=16, fifo=fifo,
                        fifo_drain_rows_per_cycle=0.5)


def _run(automaton, data, config, fidelity):
    device = SunderDevice(config, fidelity=fidelity)
    device.configure(automaton)
    vectors, limit = stream_for(automaton, data)
    result = device.run(vectors, position_limit=limit)
    return device, result, vectors, limit


def _access_counters(device):
    """Every matching-side subarray counter, in deterministic order."""
    counters = []
    for _, _, pu in device.iter_pus():
        counters.append((pu.subarray.port1_reads, pu.subarray.port1_writes,
                         pu.subarray.port2_reads,
                         pu.crossbar.subarray.port2_reads))
    for cluster in device.clusters:
        counters.append(cluster.global_switch.crossbar.subarray.port2_reads)
    return counters


@pytest.mark.parametrize("fifo", [False, True])
@pytest.mark.parametrize("rate", [1, 2, 4])
class TestPackedVsLiteral:
    def test_randomized_differential(self, rate, fifo):
        machine = compile_ruleset(RULES)
        strided = to_rate(machine, rate)
        config = _config(rate, fifo)
        data = _random_data(rate * 31 + fifo)

        _, literal_result, vectors, limit = _run(
            strided, data, config, "literal")
        literal_device = literal_result.device
        packed_device, packed_result, _, _ = _run(
            strided, data, config, "packed")

        # RunResult figures are identical.
        assert packed_result.cycles == literal_result.cycles
        assert packed_result.stall_cycles == literal_result.stall_cycles
        # Report streams are identical, and non-trivial.
        literal_keys = literal_result.reports().event_keys()
        assert packed_result.reports().event_keys() == literal_keys
        assert literal_keys
        # Aggregate statistics are identical.
        assert packed_device.statistics() == literal_device.statistics()
        # Subarray access counters (and hence energy) are identical: the
        # packed path derives them analytically.
        assert _access_counters(packed_device) == \
            _access_counters(literal_device)
        assert repr(device_energy(packed_device)) == \
            repr(device_energy(literal_device))
        # Both fidelities match both functional engines.
        for engine_cls in (BitsetEngine, NaiveEngine):
            reference = engine_cls(strided).run(
                vectors, position_limit=limit).event_keys()
            assert literal_keys == reference

    def test_dynamic_state_identical_after_run(self, rate, fifo):
        machine = compile_ruleset(RULES[:4])
        strided = to_rate(machine, rate)
        config = _config(rate, fifo)
        data = _random_data(rate * 17 + fifo, length=120)
        _, literal_result, _, _ = _run(strided, data, config, "literal")
        packed_device, _, _, _ = _run(strided, data, config, "packed")
        for (_, _, literal_pu), (_, _, packed_pu) in zip(
                literal_result.device.iter_pus(), packed_device.iter_pus()):
            assert (literal_pu.enable == packed_pu.enable).all()
            assert (literal_pu.active == packed_pu.active).all()


class TestPackedStepAndContext:
    def _devices(self, fifo=True):
        strided = to_rate(compile_ruleset(RULES[:3]), 4)
        config = _config(4, fifo)
        devices = []
        for fidelity in ("literal", "packed"):
            device = SunderDevice(config, fidelity=fidelity)
            device.configure(strided)
            devices.append(device)
        vectors, _ = stream_for(strided, _random_data(99, length=150))
        return devices, vectors

    def test_single_step_parity(self):
        (literal, packed), vectors = self._devices()
        for vector in vectors[:40]:
            assert packed.step(vector) == literal.step(vector)
            for (_, _, lpu), (_, _, ppu) in zip(
                    literal.iter_pus(), packed.iter_pus()):
                assert (lpu.active == ppu.active).all()
            assert packed.live_report_status() == literal.live_report_status()

    def test_context_switch_interleaving(self):
        (literal, packed), vectors = self._devices()
        half = len(vectors) // 2
        contexts = {}
        for device in (literal, packed):
            device.run(vectors[:half])
            contexts[device] = device.save_context()
            device.reset_matching_state()
            device.run(vectors[:20])
            device.load_context(contexts[device])
            device.run(vectors[half:])
        assert (packed.report_events().event_keys()
                == literal.report_events().event_keys())
        assert packed.statistics() == literal.statistics()

    def test_snapshot_roundtrip_mid_stream(self):
        (literal, packed), vectors = self._devices(fifo=False)
        half = len(vectors) // 2
        packed.run(vectors[:half])
        literal.run(vectors[:half])
        restored = load_device(save_device(packed), fidelity="packed")
        restored.run(vectors[half:])
        literal.run(vectors[half:])
        assert (restored.report_events().event_keys()
                == literal.report_events().event_keys())

    def test_host_store_invalidates_kernel(self):
        (literal, packed), vectors = self._devices()
        packed.run(vectors[:10])
        assert packed._kernel is not None
        host = HostInterface(packed)
        row = packed.clusters[0].pus[0].subarray.read_row(0)
        host.store_row(host.address_map.address_of(0, 0, 0), row)
        assert packed._kernel is None
        # The rewritten row was identical, so behaviour is unchanged.
        packed.run(vectors[10:])
        literal.run(vectors)
        assert (packed.report_events().event_keys()
                == literal.report_events().event_keys())


class TestKernelMechanics:
    def test_fidelity_knob(self):
        assert SunderDevice(fidelity="auto").fidelity == "packed"
        assert SunderDevice(fidelity="literal").fidelity == "literal"
        assert "auto" in FIDELITIES
        with pytest.raises(ArchitectureError):
            SunderDevice(fidelity="warp")

    def test_step_cache_hits_and_idle_skipping(self):
        strided = to_rate(compile_ruleset(["abc"]), 4)
        device = SunderDevice(_config(4, False), fidelity="packed")
        device.configure(strided)
        vectors, _ = stream_for(strided, b"abcd" * 100)
        device.run(vectors)
        info = device.step_cache_info()
        assert info["misses"] >= 1
        assert info["hits"] > info["misses"]  # periodic stream re-keys fast
        assert 0.0 < info["hit_rate"] <= 1.0
        assert info["size"] <= info["limit"]
        # A one-cluster device still instantiates 4 PUs; the unused ones
        # are never enabled and must be skipped.
        assert device._kernel.pus_skipped > 0

    def test_cache_disabled_still_exact(self):
        strided = to_rate(compile_ruleset(RULES[:3]), 4)
        config = _config(4, True)
        data = _random_data(5, length=100)
        vectors, limit = stream_for(strided, data)
        uncached = SunderDevice(config, fidelity="packed", step_cache=0)
        uncached.configure(strided)
        literal = SunderDevice(config, fidelity="literal")
        literal.configure(strided)
        uncached_result = uncached.run(vectors, position_limit=limit)
        literal_result = literal.run(vectors, position_limit=limit)
        assert uncached.step_cache_info()["hits"] == 0
        assert (uncached_result.reports().event_keys()
                == literal_result.reports().event_keys())
        assert uncached_result.stall_cycles == literal_result.stall_cycles

    def test_literal_device_never_compiles(self):
        strided = to_rate(compile_ruleset(["abc"]), 4)
        device = SunderDevice(_config(4, False), fidelity="literal")
        device.configure(strided)
        vectors, _ = stream_for(strided, b"abc" * 20)
        device.run(vectors)
        assert device._kernel is None
        assert device.step_cache_info()["misses"] == 0

    def test_packed_rejects_bad_vectors(self):
        strided = to_rate(compile_ruleset(["abc"]), 4)
        device = SunderDevice(_config(4, False), fidelity="packed")
        device.configure(strided)
        with pytest.raises(ArchitectureError):
            device.step((1, 2))  # wrong arity
        with pytest.raises(ArchitectureError):
            device.step((1, 2, 3, 16))  # nibble out of range
