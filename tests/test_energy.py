"""Energy-model tests."""

import pytest

from repro.core import SunderConfig, SunderDevice
from repro.hwmodel import ENERGY_PJ, analytic_energy, device_energy
from repro.regex import compile_ruleset
from repro.sim import stream_for
from repro.transform import to_rate


class TestPerAccessEnergy:
    def test_values_follow_table2(self):
        # 8T: 6.07mW x 150ps = 0.91 pJ per access.
        assert ENERGY_PJ["sunder_8t"] == pytest.approx(0.91, abs=0.01)
        assert ENERGY_PJ["ca_6t"] == pytest.approx(1.214, abs=0.01)
        assert ENERGY_PJ["impala_6t"] == pytest.approx(0.104, abs=0.005)


class TestDeviceEnergy:
    def _run(self, data):
        machine = to_rate(compile_ruleset(["ab", "cd"]), 4)
        device = SunderDevice(SunderConfig(rate_nibbles=4, report_bits=16,
                                           fifo=False))
        device.configure(machine)
        vectors, limit = stream_for(machine, data)
        device.run(vectors, position_limit=limit)
        return device

    def test_components_positive_after_run(self):
        device = self._run(b"xxabxxcdxx" * 5)
        report = device_energy(device)
        assert report.matching_nj > 0
        assert report.reporting_nj > 0
        assert report.total_nj == pytest.approx(
            report.matching_nj + report.interconnect_nj + report.reporting_nj
        )

    def test_energy_grows_with_input(self):
        short = device_energy(self._run(b"xxabxx" * 2))
        long = device_energy(self._run(b"xxabxx" * 20))
        assert long.total_nj > short.total_nj

    def test_per_byte_normalization(self):
        device = self._run(b"xxabxxcdxx")
        report = device_energy(device)
        assert report.per_byte_pj(10) == pytest.approx(
            report.total_nj * 100, rel=1e-6
        )
        assert report.per_byte_pj(0) == 0.0


class TestAnalyticEnergy:
    def test_matches_hand_computation(self):
        report = analytic_energy(cycles=1000, pus=4, report_cycles=100)
        per_access = ENERGY_PJ["sunder_8t"]
        assert report.matching_nj == pytest.approx(1000 * 4 * per_access / 1000)
        # 4 local switches + 1 global switch per cycle.
        assert report.interconnect_nj == pytest.approx(
            (1000 * 4 + 1000) * per_access / 1000
        )
        assert report.reporting_nj == pytest.approx(100 * per_access / 1000)

    def test_reporting_energy_is_small_fraction(self):
        # The architectural story in energy terms: reporting piggybacks on
        # existing arrays and stays a tiny share of total energy.
        report = analytic_energy(cycles=100_000, pus=40, report_cycles=3_240,
                                 reports_drained_rows=500)
        assert report.reporting_nj < 0.01 * report.total_nj
