"""Functional-engine tests: semantics, differential, and recorder."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import Automaton, StartKind, SymbolSet
from repro.errors import SimulationError
from repro.sim import BitsetEngine, NaiveEngine, ReportRecorder
from conftest import random_automaton


class TestSemantics:
    def test_start_of_data_only_fires_at_cycle_zero(self):
        automaton = Automaton(bits=8)
        automaton.new_state("s", SymbolSet.of(8, [1]),
                            start=StartKind.START_OF_DATA,
                            report=True, report_code="s")
        recorder = BitsetEngine(automaton).run([1, 1, 1])
        assert recorder.positions() == [0]

    def test_all_input_fires_every_cycle(self):
        automaton = Automaton(bits=8)
        automaton.new_state("s", SymbolSet.of(8, [1]),
                            start=StartKind.ALL_INPUT,
                            report=True, report_code="s")
        recorder = BitsetEngine(automaton).run([1, 2, 1])
        assert recorder.positions() == [0, 2]

    def test_start_period_gates_all_input(self):
        automaton = Automaton(bits=8, start_period=2)
        automaton.new_state("s", SymbolSet.of(8, [1]),
                            start=StartKind.ALL_INPUT,
                            report=True, report_code="s")
        recorder = BitsetEngine(automaton).run([1, 1, 1, 1])
        assert recorder.positions() == [0, 2]

    def test_transitions_require_match(self):
        automaton = Automaton(bits=8)
        automaton.new_state("a", SymbolSet.of(8, [1]), start="all-input")
        automaton.new_state("b", SymbolSet.of(8, [2]), report=True,
                            report_code="b")
        automaton.add_transition("a", "b")
        assert BitsetEngine(automaton).run([1, 2]).positions() == [1]
        assert BitsetEngine(automaton).run([1, 3]).positions() == []
        assert BitsetEngine(automaton).run([2, 2]).positions() == []

    def test_vector_arity_positions(self):
        automaton = Automaton(bits=4, arity=2)
        automaton.new_state(
            "s", (SymbolSet.of(4, [1]), SymbolSet.full(4)),
            start="all-input", report=True, report_code="s",
            report_offsets=(0,),
        )
        recorder = BitsetEngine(automaton).run([(1, 5), (2, 5), (1, 0)])
        # Offset 0 within cycles 0 and 2 -> stream positions 0 and 4.
        assert recorder.positions() == [0, 4]

    def test_out_of_range_symbol_raises(self):
        automaton = Automaton(bits=4)
        automaton.new_state("s", SymbolSet.full(4), start="all-input")
        with pytest.raises(SimulationError):
            BitsetEngine(automaton).run([16])

    def test_arity_mismatch_raises(self):
        automaton = Automaton(bits=4, arity=2)
        automaton.new_state("s", (SymbolSet.full(4),) * 2, start="all-input")
        with pytest.raises(SimulationError):
            BitsetEngine(automaton).run([(1,)])

    def test_reset_between_runs(self):
        automaton = Automaton(bits=8)
        automaton.new_state("s", SymbolSet.of(8, [1]),
                            start=StartKind.START_OF_DATA,
                            report=True, report_code="s")
        engine = BitsetEngine(automaton)
        assert engine.run([1]).total_reports == 1
        assert engine.run([2]).total_reports == 0
        assert engine.run([1]).total_reports == 1

    def test_active_ids_and_history(self):
        automaton = Automaton(bits=8)
        automaton.new_state("s", SymbolSet.of(8, [1]), start="all-input")
        engine = BitsetEngine(automaton)
        engine.run([1, 2, 1])
        assert engine.active_count_history == [1, 0, 1]


class TestDifferential:
    @pytest.mark.parametrize("seed", range(15))
    def test_bitset_matches_naive(self, seed):
        rng = random.Random(seed)
        automaton = random_automaton(rng, n_states=9, bits=4,
                                     edge_density=0.3)
        if len(automaton) == 0:
            return
        bitset, naive = BitsetEngine(automaton), NaiveEngine(automaton)
        for _ in range(5):
            data = [rng.randrange(16) for _ in range(rng.randint(0, 25))]
            r1, r2 = ReportRecorder(), ReportRecorder()
            bitset.run(data, r1)
            naive.run(data, r2)
            assert r1.event_keys() == r2.event_keys()
            assert bitset.active_ids() == naive.active_ids()

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.binary(max_size=24))
    def test_bitset_matches_naive_hypothesis(self, seed, raw):
        rng = random.Random(seed)
        automaton = random_automaton(rng, n_states=7, bits=4,
                                     edge_density=0.35)
        if len(automaton) == 0:
            return
        data = [byte % 16 for byte in raw]
        r1 = BitsetEngine(automaton).run(data)
        r2 = NaiveEngine(automaton).run(data)
        assert r1.event_keys() == r2.event_keys()


class TestRecorder:
    def test_position_limit_filters(self):
        recorder = ReportRecorder(position_limit=5)
        recorder.record(4, 4, "s", "c")
        recorder.record(5, 5, "s", "c")
        assert recorder.total_reports == 1
        assert recorder.positions() == [4]

    def test_summary_columns(self):
        recorder = ReportRecorder()
        recorder.record(0, 0, "a", "x")
        recorder.record(0, 0, "b", "y")
        recorder.record(3, 3, "a", "x")
        summary = recorder.summary(10)
        assert summary["reports"] == 3
        assert summary["report_cycles"] == 2
        assert summary["reports_per_report_cycle"] == 1.5
        assert summary["report_cycle_pct"] == 20.0

    def test_cycle_profile(self):
        recorder = ReportRecorder()
        recorder.record(1, 1, "a", "x")
        recorder.record(1, 1, "b", "y")
        assert recorder.cycle_profile(3) == [0, 2, 0]

    def test_keep_events_false_keeps_aggregates(self):
        recorder = ReportRecorder(keep_events=False)
        recorder.record(0, 0, "a", "x")
        assert recorder.total_reports == 1
        assert recorder.events == []

    def test_max_reports_in_a_cycle(self):
        recorder = ReportRecorder()
        assert recorder.max_reports_in_a_cycle() == 0
        for _ in range(3):
            recorder.record(7, 7, "a", "x")
        assert recorder.max_reports_in_a_cycle() == 3
