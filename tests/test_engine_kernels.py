"""Kernel/cache differential suite: every BitsetEngine configuration
must be bit-exact with NaiveEngine, including start-period and
report-offset edge cases, plus the step-cache and history-limit
behaviours themselves."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import Automaton, StartKind, SymbolSet
from repro.errors import SimulationError
from repro.sim import BitsetEngine, NaiveEngine, ReportRecorder
from repro.sim.engine import DEFAULT_STEP_CACHE, EAGER_SLICE_STATES, _popcount
from conftest import random_automaton

#: Every kernel/cache configuration under differential test.
CONFIGS = [
    {"kernel": "scan", "step_cache": 0},
    {"kernel": "scan", "step_cache": DEFAULT_STEP_CACHE},
    {"kernel": "sliced", "step_cache": 0},
    {"kernel": "sliced", "step_cache": DEFAULT_STEP_CACHE},
    {"kernel": "sliced", "step_cache": 4},  # tiny: constant eviction
]


def _edge_case_automaton(rng, start_period=1, arity=2):
    """Random vector automaton with start periods and multi-offset reports."""
    automaton = Automaton(name="edge", bits=4, arity=arity,
                          start_period=start_period)
    n_states = rng.randint(3, 10)
    ids = []
    for index in range(n_states):
        symbols = tuple(
            SymbolSet.of(4, rng.sample(range(16), rng.randint(1, 8)))
            for _ in range(arity)
        )
        start = StartKind.NONE
        if index == 0 or rng.random() < 0.2:
            start = rng.choice([StartKind.ALL_INPUT, StartKind.START_OF_DATA])
        report = rng.random() < 0.4
        automaton.new_state(
            "s%d" % index,
            symbols,
            start=start,
            report=report,
            report_code="c%d" % index if report else None,
            report_offsets=tuple(sorted(rng.sample(range(arity),
                                                   rng.randint(1, arity))))
            if report else None,
        )
        ids.append("s%d" % index)
    for src in ids:
        for dst in ids:
            if rng.random() < 0.3:
                automaton.add_transition(src, dst)
    automaton.prune_unreachable()
    return automaton


def _assert_equivalent(automaton, streams, config):
    bitset = BitsetEngine(automaton, **config)
    naive = NaiveEngine(automaton)
    for data in streams:
        r1, r2 = ReportRecorder(), ReportRecorder()
        bitset.run(data, r1)
        naive.run(data, r2)
        assert r1.event_keys() == r2.event_keys()
        assert r1.total_reports == r2.total_reports
        assert dict(r1.reports_per_cycle) == dict(r2.reports_per_cycle)
        assert bitset.active_ids() == naive.active_ids()


class TestDifferential:
    @pytest.mark.parametrize("config", CONFIGS,
                             ids=lambda c: "%s-cache%d" % (c["kernel"],
                                                           c["step_cache"]))
    @pytest.mark.parametrize("seed", range(8))
    def test_random_automata_match_naive(self, seed, config):
        rng = random.Random(seed)
        automaton = random_automaton(rng, n_states=9, bits=4,
                                     edge_density=0.3)
        if len(automaton) == 0:
            return
        streams = [
            [rng.randrange(16) for _ in range(rng.randint(0, 30))]
            for _ in range(4)
        ]
        _assert_equivalent(automaton, streams, config)

    @pytest.mark.parametrize("config", CONFIGS,
                             ids=lambda c: "%s-cache%d" % (c["kernel"],
                                                           c["step_cache"]))
    @pytest.mark.parametrize("start_period", (1, 2, 3, 5))
    def test_start_period_and_offsets_match_naive(self, start_period, config):
        rng = random.Random(1000 + start_period)
        automaton = _edge_case_automaton(rng, start_period=start_period)
        if len(automaton) == 0:
            return
        streams = [
            [(rng.randrange(16), rng.randrange(16))
             for _ in range(rng.randint(1, 40))]
            for _ in range(4)
        ]
        _assert_equivalent(automaton, streams, config)

    def test_kernels_agree_on_large_lazy_sliced_automaton(self):
        """Above the eager threshold the lazy table fill must stay exact."""
        rng = random.Random(7)
        automaton = random_automaton(rng, n_states=EAGER_SLICE_STATES + 40,
                                     bits=4, edge_density=0.01)
        engine = BitsetEngine(automaton, kernel="sliced", step_cache=0)
        assert any(entry is None
                   for table in engine._block_tables for entry in table)
        data = [rng.randrange(16) for _ in range(120)]
        r_sliced = engine.run(data)
        r_scan = BitsetEngine(automaton, kernel="scan", step_cache=0).run(data)
        assert r_sliced.event_keys() == r_scan.event_keys()

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.binary(max_size=32),
           st.sampled_from(["scan", "sliced"]), st.sampled_from([0, 8, 1024]))
    def test_hypothesis_configs_match_naive(self, seed, raw, kernel, cache):
        rng = random.Random(seed)
        automaton = random_automaton(rng, n_states=7, bits=4,
                                     edge_density=0.35)
        if len(automaton) == 0:
            return
        data = [byte % 16 for byte in raw]
        r1 = BitsetEngine(automaton, kernel=kernel, step_cache=cache).run(data)
        r2 = NaiveEngine(automaton).run(data)
        assert r1.event_keys() == r2.event_keys()

    def test_warm_cache_reruns_are_identical(self):
        """A second run over the same stream (all cache hits) must match."""
        rng = random.Random(99)
        automaton = random_automaton(rng, n_states=8, bits=4)
        engine = BitsetEngine(automaton)
        data = [rng.randrange(16) for _ in range(200)]
        first = engine.run(data)
        info = engine.step_cache_info()
        second = engine.run(data)
        assert engine.step_cache_info()["hits"] > info["hits"]
        assert first.event_keys() == second.event_keys()
        assert first.total_reports == second.total_reports

    def test_step_streaming_matches_run(self):
        """Streaming step() calls equal one run() (the hoisted hot loop)."""
        rng = random.Random(5)
        automaton = random_automaton(rng, n_states=8, bits=4)
        data = [rng.randrange(16) for _ in range(150)]
        run_recorder = BitsetEngine(automaton).run(data)
        engine = BitsetEngine(automaton)
        step_recorder = ReportRecorder()
        engine.reset()
        for symbol in data:
            engine.step((symbol,), step_recorder)
        assert step_recorder.event_keys() == run_recorder.event_keys()


class TestStepCache:
    def _abc(self):
        automaton = Automaton(bits=8)
        automaton.new_state("s", SymbolSet.of(8, [1]), start="all-input",
                            report=True, report_code="s")
        return automaton

    def test_counters_and_info(self):
        engine = BitsetEngine(self._abc())
        engine.run([1, 2, 1, 2, 1])
        info = engine.step_cache_info()
        assert info["hits"] + info["misses"] == 5
        assert info["misses"] >= 1
        assert 0.0 <= info["hit_rate"] <= 1.0
        assert info["limit"] == DEFAULT_STEP_CACHE
        assert info["size"] <= info["limit"]

    def test_disabled_cache_records_nothing(self):
        engine = BitsetEngine(self._abc(), step_cache=0)
        engine.run([1, 1, 1])
        info = engine.step_cache_info()
        assert info == {"hits": 0, "misses": 0, "hit_rate": 0.0,
                        "size": 0, "limit": 0}

    def test_tiny_cache_evicts_but_stays_exact(self):
        rng = random.Random(3)
        automaton = random_automaton(rng, n_states=8, bits=4)
        engine = BitsetEngine(automaton, step_cache=2)
        data = [rng.randrange(16) for _ in range(100)]
        recorder = engine.run(data)
        assert engine.step_cache_info()["size"] <= 2
        reference = NaiveEngine(automaton).run(data)
        assert recorder.event_keys() == reference.event_keys()

    def test_invalid_configuration_raises(self):
        with pytest.raises(SimulationError):
            BitsetEngine(self._abc(), kernel="quantum")
        with pytest.raises(SimulationError):
            BitsetEngine(self._abc(), step_cache=-1)
        with pytest.raises(SimulationError):
            BitsetEngine(self._abc(), history_limit=-1)


class TestHistoryLimit:
    def _engine(self, **kwargs):
        automaton = Automaton(bits=8)
        automaton.new_state("s", SymbolSet.of(8, [1]), start="all-input")
        return BitsetEngine(automaton, **kwargs)

    def test_default_is_unbounded_list(self):
        engine = self._engine()
        engine.run([1, 2, 1])
        assert engine.active_count_history == [1, 0, 1]
        assert isinstance(engine.active_count_history, list)

    def test_limit_keeps_most_recent_counts(self):
        engine = self._engine(history_limit=2)
        engine.run([1, 2, 1, 1])
        assert list(engine.active_count_history) == [1, 1]

    def test_zero_disables_history(self):
        engine = self._engine(history_limit=0)
        engine.run([1, 2, 1])
        assert len(engine.active_count_history) == 0


def test_popcount_matches_reference():
    rng = random.Random(0)
    for _ in range(200):
        value = rng.getrandbits(rng.randint(1, 300))
        assert _popcount(value) == bin(value).count("1")
    assert _popcount(0) == 0
