"""Error-hierarchy tests: one base class, informative messages."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("subclass", [
        errors.AutomatonError,
        errors.SymbolError,
        errors.RegexError,
        errors.TransformError,
        errors.SimulationError,
        errors.ArchitectureError,
        errors.CapacityError,
        errors.FormatError,
        errors.WorkloadError,
    ])
    def test_all_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, errors.ReproError)

    def test_capacity_is_architecture_error(self):
        assert issubclass(errors.CapacityError, errors.ArchitectureError)

    def test_one_except_clause_catches_everything(self):
        from repro.regex import compile_pattern
        from repro.core import SunderConfig
        for trigger in (
            lambda: compile_pattern("(("),
            lambda: SunderConfig(rate_nibbles=3),
        ):
            with pytest.raises(errors.ReproError):
                trigger()


class TestRegexErrorContext:
    def test_carries_pattern_and_position(self):
        error = errors.RegexError("boom", pattern="ab(", position=2)
        assert error.pattern == "ab("
        assert error.position == 2
        assert "ab(" in str(error) and "position 2" in str(error)

    def test_message_only(self):
        assert str(errors.RegexError("boom")) == "boom"
