"""Smoke tests: the shipped examples must run and produce their output.

Each example is executed as a subprocess (the way a user runs it); slow
examples are exercised at reduced scope elsewhere (reproduce_paper is the
benchmark harness in disguise).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", ["http-admin-probe", "passwd-leak", "ssn-pattern"]),
    ("pattern_mining.py", ["adf: FOUND", "xyz: absent", "Summarized"]),
    ("snort_ids.py", ["sid:2001", "sid:2004", "Recommended rate"]),
    ("anml_interop.py", ["ANML round trip", "True"]),
    ("dna_motif_search.py", ["ACGTACGTAC", "16"]),
]


@pytest.mark.parametrize("script,expected", CASES,
                         ids=[case[0] for case in CASES])
def test_example_runs(script, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for marker in expected:
        assert marker in result.stdout, (script, marker, result.stdout[-500:])
