"""Differential suite for the unified execution-plan layer.

The layer's contract is that nothing new executes: a planned
``Session.execute`` call dispatches to exactly the run variants PRs 5-8
already proved bit-exact, so its results must equal every direct
variant call — engine serial/sharded/interleaved/batched/gated and
device packed/literal/gated — across the PR 8 regex families, rates
1/2/4, and both fast kernels.  On top of that sit the plan's error
matrix (bad values, contradictory combinations, trait-dependent
rejections), canonical serialization, trait memoization, and the
planner property that its output is always executable.
"""

import random

import pytest

from conftest import random_automaton
from repro.core import SunderConfig, SunderDevice
from repro.errors import ArchitectureError
from repro.exec import (DEFAULT_PLAN, PLAN_FORMAT, PLAN_VERSION,
                        ExecutionPlan, Planner, Session, automaton_traits,
                        resolve_plan)
from repro.prefilter import build_prefilter, gated_device_run, gated_simulation
from repro.regex import compile_pattern, compile_ruleset
from repro.sim import BitsetEngine, stream_for
from repro.sim.engine import AUTO_SHARD_MIN_CYCLES
from repro.sim.reports import ReportRecorder
from repro.transform import to_rate
from test_prefilter import (ALPHABET, FILTERABLE_FAMILIES, RATES,
                            UNFILTERABLE_FAMILIES, _streams)

ALL_FAMILIES = dict(FILTERABLE_FAMILIES)
ALL_FAMILIES.update(UNFILTERABLE_FAMILIES)

KERNELS = ("sliced", "scan")


def _events(recorder):
    return [(e.position, e.cycle, e.state_id, e.report_code)
            for e in recorder.events]


def _sorted_events(recorder):
    return sorted(_events(recorder))


def _recorder_for(machine, data):
    _, limit = stream_for(machine, data)
    return ReportRecorder(keep_events=True, position_limit=limit)


# ---------------------------------------------------------------------------
# Differential: Session.execute vs every direct engine run variant
# ---------------------------------------------------------------------------
class TestSessionEngineDifferential:

    @pytest.mark.parametrize("family", sorted(ALL_FAMILIES))
    def test_planned_session_matches_direct_variants(self, family):
        rules = ALL_FAMILIES[family]
        rng = random.Random(40 + len(family))
        streams = _streams(rules, rng)
        for rate in RATES:
            source = compile_ruleset(rules)
            machine = source if rate == 1 else to_rate(source, rate)
            traits = automaton_traits(machine)
            for kernel in KERNELS:
                for data in streams:
                    vectors, limit = stream_for(machine, data)
                    engine = BitsetEngine(machine, kernel=kernel)

                    # serial
                    baseline = _recorder_for(machine, data)
                    engine.run(vectors, baseline)
                    session = Session(machine, ExecutionPlan(kernel=kernel),
                                      source=source)
                    got = session.execute([data])
                    assert len(got) == 1
                    assert _events(got[0]) == _events(baseline), (
                        family, rate, kernel, "serial")

                    # multi-stream batch
                    recorders = [_recorder_for(machine, d) for d in streams]
                    engine.run_batch([stream_for(machine, d)[0]
                                      for d in streams], recorders)
                    got = Session(machine, ExecutionPlan(kernel=kernel),
                                  source=source).execute(streams)
                    assert [_events(r) for r in got] \
                        == [_events(r) for r in recorders], (
                            family, rate, kernel, "batch")

                    # sharded + interleaved lanes (acyclic machines only:
                    # validate_for rejects explicit counts on cyclic ones)
                    if traits.depth_bound is not None:
                        direct = _recorder_for(machine, data)
                        engine.run_sharded(vectors, 3, direct,
                                           interleave=False)
                        got = Session(
                            machine,
                            ExecutionPlan(kernel=kernel, shards=3),
                            source=source).execute([data])
                        assert _events(got[0]) == _events(direct), (
                            family, rate, kernel, "sharded")

                        direct = _recorder_for(machine, data)
                        engine.run_sharded(vectors, 3, direct,
                                           interleave=True)
                        got = Session(
                            machine,
                            ExecutionPlan(kernel=kernel, batch=3),
                            source=source).execute([data])
                        assert _events(got[0]) == _events(direct), (
                            family, rate, kernel, "interleaved")

                    # prefilter-gated (bit-exact whether the gate engages
                    # or bypasses; unfilterable families take the bypass)
                    direct = _recorder_for(machine, data)
                    gated_simulation(machine, data, direct, source=source,
                                     prefilter=build_prefilter(source))
                    got = Session(
                        machine,
                        ExecutionPlan(kernel=kernel, prefilter=True),
                        source=source).execute([data])
                    assert _sorted_events(got[0]) == _sorted_events(direct), (
                        family, rate, kernel, "gated")

    def test_session_reuses_one_engine_across_calls(self):
        machine = compile_ruleset(["abc", "needle"])
        session = Session(machine, DEFAULT_PLAN)
        session.execute([b"xxabcxx"])
        engine = session._engine
        session.execute([b"needle soup"])
        assert session._engine is engine

    def test_auto_planned_session_matches_serial(self):
        machine = compile_ruleset(["a.*b"])  # cyclic -> serial plan
        data = b"xa yyy b zzz ab"
        vectors, _ = stream_for(machine, data)
        baseline = _recorder_for(machine, data)
        BitsetEngine(machine).run(vectors, baseline)
        session = Session(machine)
        got = session.execute([data])
        assert _events(got[0]) == _events(baseline)
        assert session.plan is not None  # bound on first execute
        assert session.plan.strategy == "serial"


# ---------------------------------------------------------------------------
# Differential: Session.execute vs every direct device run variant
# ---------------------------------------------------------------------------
class TestSessionDeviceDifferential:

    @pytest.mark.parametrize("family", sorted(ALL_FAMILIES))
    def test_planned_session_matches_direct_variants(self, family):
        rules = ALL_FAMILIES[family]
        rng = random.Random(80 + len(family))
        streams = _streams(rules, rng, length=160)
        for rate in RATES:
            source = compile_ruleset(rules)
            machine = to_rate(source, rate)
            config = SunderConfig(rate_nibbles=rate)

            # packed batch (the device's only multi-stream path)
            device = SunderDevice(config, fidelity="packed")
            device.configure(machine)
            recorders = [_recorder_for(machine, d) for d in streams]
            device.run_batch([stream_for(machine, d)[0] for d in streams],
                             recorders=recorders)
            got = Session(machine, ExecutionPlan(target="device"),
                          source=source, config=config).execute(streams)
            assert [_events(r) for r in got] \
                == [_events(r) for r in recorders], (family, rate, "packed")

            # literal oracle, one fresh device per stream
            data = streams[1]
            vectors, limit = stream_for(machine, data)
            device = SunderDevice(config, fidelity="literal")
            device.configure(machine)
            direct = device.run(vectors, position_limit=limit).reports()
            got = Session(machine,
                          ExecutionPlan(target="device", fidelity="literal"),
                          source=source, config=config).execute([data])
            assert _events(got[0]) == _events(direct), (family, rate,
                                                        "literal")

            # prefilter-gated device run
            device = SunderDevice(config, fidelity="packed")
            device.configure(machine)
            prefilter = build_prefilter(source)
            direct = gated_device_run(device, machine, data, source=source,
                                      prefilter=prefilter)
            got = Session(machine,
                          ExecutionPlan(target="device", prefilter=True),
                          source=source, config=config).execute([data])
            assert _sorted_events(got[0]) == _sorted_events(direct), (
                family, rate, "gated")

    def test_literal_sessions_are_isolated_across_calls(self):
        source = compile_ruleset(["abc"])
        machine = to_rate(source, 2)
        config = SunderConfig(rate_nibbles=2)
        session = Session(machine,
                          ExecutionPlan(target="device", fidelity="literal"),
                          source=source, config=config)
        first = session.execute([b"xxabc"])
        second = session.execute([b"xxabc"])
        assert _events(first[0]) == _events(second[0])


# ---------------------------------------------------------------------------
# Plan error matrix: values, combinations, trait-dependent rules
# ---------------------------------------------------------------------------
class TestPlanValidation:

    @pytest.mark.parametrize("fields", [
        {"target": "gpu"},
        {"kernel": "vectorized"},
        {"fidelity": "exact"},
        {"batch_layout": "diagonal"},
        {"batch": 0},
        {"batch": True},
        {"batch": 2.0},
        {"shards": 0},
        {"shards": "turbo"},
        {"shards": False},
        {"prefilter": 1},
        {"prefilter": True, "hotcold_coverage": 0.0},
        {"prefilter": True, "hotcold_coverage": 1.5},
        {"hotcold_coverage": 0.9},          # requires prefilter
        {"step_cache": -1},
        {"step_cache": True},
    ])
    def test_bad_values_raise_value_error(self, fields):
        with pytest.raises(ValueError):
            ExecutionPlan(**fields)

    @pytest.mark.parametrize("fields", [
        {"prefilter": True, "fidelity": "literal"},
        {"prefilter": True, "shards": 4},
        {"prefilter": True, "shards": "auto"},
        {"prefilter": True, "batch": 4},
        {"shards": 4, "batch": 4},
        {"shards": "auto", "batch": 2},
        {"target": "device", "shards": 4},
        {"target": "device", "shards": "auto"},
        {"target": "device", "batch": 4},
    ])
    def test_contradictory_combinations_raise(self, fields):
        with pytest.raises(ArchitectureError):
            ExecutionPlan(**fields)

    def test_error_messages_name_the_conflict(self):
        with pytest.raises(ArchitectureError, match="packed fidelity"):
            ExecutionPlan(prefilter=True, fidelity="literal")
        with pytest.raises(ArchitectureError, match="replay windows"):
            ExecutionPlan(prefilter=True, shards=4)
        with pytest.raises(ArchitectureError, match="competing"):
            ExecutionPlan(shards=2, batch=2)
        with pytest.raises(ValueError, match="hotcold_coverage"):
            ExecutionPlan(prefilter=True, hotcold_coverage=2.0)

    def test_validate_for_rejects_explicit_split_on_cyclic(self):
        cyclic = automaton_traits(compile_pattern("a.*b"))
        assert cyclic.depth_bound is None and cyclic.cyclic
        with pytest.raises(ArchitectureError, match="cyclic"):
            ExecutionPlan(shards=4).validate_for(cyclic)
        with pytest.raises(ArchitectureError, match="cyclic"):
            ExecutionPlan(batch=4).validate_for(cyclic)
        # "auto" stays valid: the engine itself falls back to serial
        plan = ExecutionPlan(shards="auto")
        assert plan.validate_for(cyclic) is plan

    def test_validate_for_accepts_split_on_acyclic(self):
        acyclic = automaton_traits(compile_pattern("abc"))
        assert acyclic.depth_bound is not None
        plan = ExecutionPlan(shards=4)
        assert plan.validate_for(acyclic) is plan

    def test_session_rejects_non_plan_values(self):
        machine = compile_pattern("abc")
        with pytest.raises(ValueError, match="ExecutionPlan"):
            Session(machine, plan={"shards": 4})

    def test_session_validates_plan_against_traits(self):
        with pytest.raises(ArchitectureError, match="cyclic"):
            Session(compile_pattern("a.*b"), ExecutionPlan(shards=4))


# ---------------------------------------------------------------------------
# Canonical serialization and the key-salting rule
# ---------------------------------------------------------------------------
class TestPlanSerialization:

    def test_default_plan_param_payload_is_empty(self):
        assert DEFAULT_PLAN.param_payload() == {}
        assert DEFAULT_PLAN.is_default

    def test_param_payload_carries_only_non_defaults_plus_version(self):
        plan = ExecutionPlan(shards="auto", kernel="scan")
        assert plan.param_payload() == {
            "kernel": "scan", "shards": "auto", "v": PLAN_VERSION}

    def test_full_round_trip(self):
        plan = ExecutionPlan(target="device", fidelity="packed",
                             prefilter=True, hotcold_coverage=0.9,
                             step_cache=512)
        assert ExecutionPlan.from_payload(plan.to_payload()) == plan
        assert ExecutionPlan.loads(plan.dumps()) == plan
        assert ExecutionPlan.from_payload(plan.param_payload()) == plan

    def test_payload_envelope_is_versioned(self):
        payload = DEFAULT_PLAN.to_payload()
        assert payload["format"] == PLAN_FORMAT
        assert payload["version"] == PLAN_VERSION

    @pytest.mark.parametrize("payload", [
        {"format": "not-a-plan", "version": 1},
        {"format": "repro-exec-plan", "version": 99},
        {"v": 99, "shards": 2},
        {"sharrds": 2, "v": 1},
        "not json {",
        17,
    ])
    def test_malformed_payloads_raise_value_error(self, payload):
        with pytest.raises(ValueError):
            if isinstance(payload, str):
                ExecutionPlan.loads(payload)
            else:
                ExecutionPlan.from_payload(payload)

    def test_resolve_plan_coercions(self):
        assert resolve_plan(None) is None
        assert resolve_plan("auto") is None
        plan = ExecutionPlan(batch=2)
        assert resolve_plan(plan) is plan
        assert resolve_plan(plan.param_payload()) == plan
        assert resolve_plan(plan.dumps()) == plan
        with pytest.raises(ValueError):
            resolve_plan(3.5)

    def test_from_flags_maps_the_legacy_surface(self):
        plan = ExecutionPlan.from_flags(shards="auto", prefilter=False)
        assert plan.shards == "auto" and plan.strategy == "sharded"
        plan = ExecutionPlan.from_flags(prefilter=True, hotcold=0.9)
        assert plan.prefilter and plan.hotcold_coverage == 0.9
        assert plan.strategy == "gated"
        with pytest.raises(ArchitectureError):
            ExecutionPlan.from_flags(prefilter=True, fidelity="literal")

    def test_reasons_are_advisory_and_never_serialized(self):
        plan = ExecutionPlan(shards=2, reasons=[
            {"choice": "strategy", "value": "sharded", "reason": "test"}])
        assert plan.reasons
        assert "reasons" not in plan.to_payload()
        assert ExecutionPlan.from_payload(plan.to_payload()) == plan

    def test_equality_and_hash_over_fields(self):
        assert ExecutionPlan(batch=2) == ExecutionPlan(batch=2)
        assert ExecutionPlan(batch=2) != ExecutionPlan(batch=3)
        assert hash(ExecutionPlan()) == hash(DEFAULT_PLAN)
        assert "default" in repr(ExecutionPlan())
        assert "batch=2" in repr(ExecutionPlan(batch=2))


# ---------------------------------------------------------------------------
# Traits: memoized automaton analyses
# ---------------------------------------------------------------------------
class TestTraits:

    def test_traits_capture_the_planner_inputs(self):
        machine = compile_ruleset(["abc", "needle"])
        traits = automaton_traits(machine)
        assert traits.state_count == len(machine)
        assert traits.depth_bound == machine.depth_bound()
        assert not traits.cyclic
        assert traits.filterable and traits.literal_count >= 2

    def test_cyclic_unfilterable_traits(self):
        traits = automaton_traits(compile_pattern("a.*b"))
        assert traits.cyclic and traits.depth_bound is None
        assert not traits.filterable
        assert traits.reason

    def test_traits_are_memoized_per_machine(self):
        machine = compile_pattern("abc")
        assert automaton_traits(machine) is automaton_traits(machine)


# ---------------------------------------------------------------------------
# Planner: decisions carry reasons; output is always executable
# ---------------------------------------------------------------------------
class TestPlanner:

    def test_filterable_acyclic_gets_the_gate(self):
        plan, choices = Planner().explain(compile_ruleset(["abc", "hello"]))
        assert plan.prefilter and plan.strategy == "gated"
        assert choices[0] == {"choice": "strategy", "value": "gated",
                              "reason": "filterable-acyclic"}
        assert plan.reasons == choices

    def test_cyclic_machine_stays_serial(self):
        plan, choices = Planner().explain(
            compile_pattern("a.*b"),
            stream_cycles=AUTO_SHARD_MIN_CYCLES * 2)
        assert plan.strategy == "serial"
        assert choices[0]["reason"] == "cyclic"

    def test_long_acyclic_unfilterable_stream_shards(self):
        plan, choices = Planner().explain(
            compile_pattern("a.c"), stream_cycles=AUTO_SHARD_MIN_CYCLES)
        assert plan.shards == "auto"
        assert choices[0]["reason"] == "long-acyclic-stream"

    def test_multi_stream_batches(self):
        _, choices = Planner().explain(compile_pattern("a.c"),
                                       stream_count=4)
        assert choices[0]["value"] == "batch"
        assert choices[0]["reason"] == "multi-stream"

    def test_bad_planner_inputs(self):
        with pytest.raises(ValueError):
            Planner(target="gpu")
        with pytest.raises(ValueError):
            Planner().plan(compile_pattern("abc"), stream_count=0)

    def test_planner_output_is_always_executable(self, rng):
        """Property: over random machines and shapes, the planner never
        emits a plan that validate_for or Session.execute rejects."""
        checked = 0
        for index in range(60):
            if checked >= 40:
                break
            machine = random_automaton(
                rng, n_states=rng.randint(3, 10),
                edge_density=rng.choice([0.05, 0.15, 0.35]),
                report_fraction=0.5)
            if not len(machine):
                continue
            traits = automaton_traits(machine)
            shape = rng.choice([(1, 0), (1, AUTO_SHARD_MIN_CYCLES), (3, 0)])
            plan = Planner().plan(machine, stream_count=shape[0],
                                  stream_cycles=shape[1])
            plan.validate_for(traits)
            data = bytes(rng.randrange(256) for _ in range(60))
            streams = [data] * shape[0]
            results = Session(machine, plan).execute(streams)
            assert len(results) == shape[0]
            baseline = _recorder_for(machine, data)
            BitsetEngine(machine).run(stream_for(machine, data)[0], baseline)
            assert _sorted_events(results[0]) == _sorted_events(baseline)
            checked += 1
        assert checked >= 40  # the property must actually exercise


# ---------------------------------------------------------------------------
# Stage plumbing: the plan param salts keys only when non-default
# ---------------------------------------------------------------------------
class TestStagePlumbing:

    def test_stage_plan_prefers_the_plan_param(self):
        from repro.runtime.stages import _stage_plan
        plan = ExecutionPlan(shards="auto", prefilter=False)
        assert _stage_plan({"plan": plan.param_payload()}) == plan
        assert _stage_plan({}) == DEFAULT_PLAN
        legacy = _stage_plan({"batch": 4})
        assert legacy.batch == 4

    def test_default_plan_keeps_simulation_params_unchanged(self):
        from repro.experiments.table1 import simulation_params
        base = {"name": "Snort"}
        assert simulation_params(base, plan=DEFAULT_PLAN) == base
        salted = simulation_params(base, plan=ExecutionPlan(shards="auto"))
        assert salted["plan"] == {"shards": "auto", "v": PLAN_VERSION}
        with pytest.raises(ValueError, match="not both"):
            simulation_params(base, batch=4, plan=DEFAULT_PLAN)
