"""Experiment-harness smoke tests: every table/figure runs and is sane.

Heavier checks of the *values* live in the benchmark harness; here we
verify each experiment executes at tiny scale, produces a complete set of
rows, and honours the headline qualitative claims.
"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    figure8,
    figure9,
    figure10,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.workloads import BENCHMARK_NAMES

FAST_NAMES = ["Bro217", "Snort", "TCP", "SPM"]
SCALE = 0.002


@pytest.fixture(scope="module")
def table4_rows():
    rows, averages = table4.run(scale=SCALE, seed=0, names=FAST_NAMES)
    return rows, averages


class TestTable1:
    def test_rows_complete_and_sane(self):
        rows = table1.run(scale=SCALE, names=FAST_NAMES)
        assert [row["benchmark"] for row in rows] == FAST_NAMES
        for row in rows:
            assert row["states"] > 0
            assert 0 <= row["report_cycle_pct"] <= 100
        assert table1.render(rows)


class TestTable2:
    def test_runs(self):
        rows, derived = table2.run()
        assert len(rows) == 3
        assert derived["area_ratio_8t_over_6t"] > 2.0
        assert "Table 2" in table2.render(rows, derived)


class TestTable3:
    def test_overheads_sane(self):
        rows, averages = table3.run(scale=SCALE, names=["Bro217", "TCP"])
        for row in rows:
            assert row["states_1"] > 1.0           # nibble chains cost states
            assert 0.5 < row["states_2"] < 2.0     # 2-nibble ~ byte rate
        assert "Average" in table3.render(rows, averages)


class TestTable4:
    def test_sunder_beats_ap_shape(self, table4_rows):
        rows, averages = table4_rows
        by_name = {row["benchmark"]: row for row in rows}
        assert by_name["Snort"]["ap_overhead"] > 10
        assert by_name["Snort"]["rad_overhead"] < by_name["Snort"]["ap_overhead"]
        for row in rows:
            assert row["sunder_overhead"] < 1.2
            assert row["sunder_fifo_overhead"] <= row["sunder_overhead"] + 1e-9
        assert averages["ap_overhead"] > averages["rad_overhead"]
        assert table4.render(rows, averages)

    def test_silent_benchmark_is_free_everywhere(self):
        rows, _ = table4.run(scale=SCALE, names=["ClamAV"])
        row = rows[0]
        assert row["sunder_flushes"] == 0
        assert row["ap_overhead"] == 1.0


class TestTable5:
    def test_matches_paper(self):
        rows = table5.run()
        for row in rows:
            if row["paper_operating_ghz"]:
                assert row["operating_frequency_ghz"] == pytest.approx(
                    row["paper_operating_ghz"], rel=0.05
                )


class TestFigure8:
    def test_speedup_shape(self, table4_rows):
        rows, _ = table4_rows
        figure_rows = figure8.run(table4_rows=rows)
        by_name = {row["architecture"]: row for row in figure_rows}
        assert by_name["AP (50nm)"]["sunder_speedup_ap"] > 50
        assert by_name["Impala"]["sunder_speedup_ap"] > 1.0
        assert figure8.render(figure_rows)


class TestFigure9:
    def test_sunder_smallest(self):
        rows = figure9.run()
        by_name = {row["architecture"]: row for row in rows}
        for name in ("CA", "Impala", "AP"):
            assert by_name[name]["total_mm2"] > by_name["Sunder"]["total_mm2"]
        assert figure9.render(rows)


class TestFigure10:
    def test_anchors_and_monotonicity(self):
        rows = figure10.run()
        slowdowns = [row["slowdown"] for row in rows]
        assert slowdowns == sorted(slowdowns)
        worst = rows[-1]
        assert worst["report_cycle_pct"] == 100
        assert 6.0 <= worst["slowdown"] <= 8.0
        assert worst["slowdown_summarized"] <= 1.6
        assert figure10.render(rows)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1", "table2", "table3", "table4", "table5",
            "figure8", "figure9", "figure10", "scorecard",
        }

    def test_scorecard_claims_structure(self):
        from repro.experiments import scorecard
        claims = scorecard.build_scorecard(scale=SCALE)
        assert len(claims) >= 15
        record = claims[0].as_dict()
        assert set(record) == {"claim", "paper", "measured", "band",
                               "verdict"}
        assert scorecard.render(claims)
        import json
        payload = json.loads(scorecard.to_json(claims))
        assert len(payload["claims"]) == len(claims)
        assert payload["metrics"] is None  # no collector attached
