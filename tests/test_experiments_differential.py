"""Differential tests: the stage-graph runtime preserves every output.

``tests/data/golden_experiments.json`` captures the rendered tables,
figures, and scorecard produced *before* the experiments were rewritten
onto the stage-graph runtime (scale 0.002, seed 0).  These tests pin

- byte-identity of every rendered experiment against those goldens,
- byte-identity of the scorecard across worker counts and across a
  cold-vs-warm artifact store,
- that a warm ``--artifact-dir`` scorecard performs zero
  generate/simulate8/to_rate executions (pure artifact-store hits), and
- the ``scorecard.to_json`` payload schema.
"""

import json
import pathlib

import pytest

from repro import obs
from repro.errors import WorkloadError
from repro.experiments import (figure8, figure10, scorecard, table1, table3,
                               table4)
from repro.runtime import store as runtime_store
from repro.transform import cache as transform_cache
from repro.workloads import generate

SCALE = 0.002
FAST_NAMES = ["Bro217", "Snort", "TCP", "SPM"]

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "data" / "golden_experiments.json")
    .read_text(encoding="utf-8"))


@pytest.fixture(autouse=True)
def fresh_stores():
    """Every test starts and ends with pristine memory-only stores."""
    runtime_store.configure()
    transform_cache.configure()
    yield
    runtime_store.configure()
    transform_cache.configure()


class TestGoldenOutputs:
    def test_table1(self):
        rows = table1.run(scale=SCALE, seed=0, names=FAST_NAMES)
        assert table1.render(rows) == GOLDEN["table1"]

    def test_table3(self):
        rows, averages = table3.run(scale=SCALE, seed=0,
                                    names=["Bro217", "TCP"])
        assert table3.render(rows, averages) == GOLDEN["table3"]

    def test_table4_and_figure8(self):
        rows, averages = table4.run(scale=SCALE, seed=0, names=FAST_NAMES)
        assert table4.render(rows, averages) == GOLDEN["table4"]
        figure_rows = figure8.run(table4_rows=rows)
        assert figure8.render(figure_rows) == GOLDEN["figure8"]

    def test_figure10(self):
        assert figure10.render(figure10.run()) == GOLDEN["figure10"]

    def test_scorecard(self):
        claims = scorecard.build_scorecard(scale=SCALE)
        assert scorecard.render(claims) == GOLDEN["scorecard"]
        assert scorecard.to_json(claims) == GOLDEN["scorecard_json"]


class TestWorkerInvariance:
    def test_scorecard_identical_at_two_workers(self):
        serial = scorecard.render(scorecard.build_scorecard(scale=SCALE))
        runtime_store.configure()
        transform_cache.configure()
        parallel = scorecard.render(
            scorecard.build_scorecard(scale=SCALE, workers=2))
        assert serial == parallel


class TestArtifactStoreInvariance:
    def test_cold_then_warm_scorecard_identical_and_hit_only(self, tmp_path):
        runtime_store.configure(directory=str(tmp_path))
        cold = scorecard.render(scorecard.build_scorecard(scale=SCALE))

        # Fresh store on the same directory: drops the memory tier, so
        # the warm run is served purely by on-disk artifacts.
        runtime_store.configure(directory=str(tmp_path))
        registry = obs.MetricsRegistry()
        with obs.collecting(registry=registry):
            warm = scorecard.render(scorecard.build_scorecard(scale=SCALE))
            snapshot = registry.snapshot()
        assert cold == warm

        misses = registry.get("repro_runtime_stage_misses_total")
        hits = registry.get("repro_runtime_stage_hits_total")
        for stage in ("generate", "simulate8", "to_rate"):
            assert misses.labels(stage=stage).value == 0, stage
            assert hits.labels(stage=stage).value > 0, stage
        # The acceptance signal is also visible in the embedded metrics
        # snapshot (what --metrics-out exports).
        by_name = {metric["name"]: metric for metric in snapshot["metrics"]}
        samples = by_name["repro_runtime_stage_misses_total"]["samples"]
        executed = {sample["labels"]["stage"] for sample in samples
                    if sample["value"] > 0}
        assert executed.isdisjoint({"generate", "simulate8", "to_rate"})


class TestToJsonSchema:
    def test_payload_schema(self):
        claims = scorecard.build_scorecard(
            scale=SCALE)[:3]  # schema, not values
        payload = json.loads(scorecard.to_json(claims))
        assert set(payload) == {"claims", "metrics"}
        assert payload["metrics"] is None  # no collector attached
        for record in payload["claims"]:
            assert set(record) == {"claim", "paper", "measured", "band",
                                   "verdict"}
            assert isinstance(record["claim"], str)
            assert isinstance(record["measured"], (int, float))
            assert record["verdict"] in ("PASS", "FAIL")

    def test_payload_embeds_metrics_when_collecting(self):
        registry = obs.MetricsRegistry()
        with obs.collecting(registry=registry):
            claims = scorecard.build_scorecard(scale=SCALE)
            payload = json.loads(scorecard.to_json(claims))
        assert isinstance(payload["metrics"], dict)
        names = {metric["name"] for metric in payload["metrics"]["metrics"]}
        assert "repro_runtime_stage_misses_total" in names


class TestSelectionGuards:
    def test_empty_selection_raises(self):
        for run in (table1.run, table3.run, table4.run):
            with pytest.raises(ValueError, match="empty benchmark selection"):
                run(scale=SCALE, names=[])

    def test_unknown_benchmark_still_fails_cleanly(self):
        with pytest.raises(WorkloadError):
            table1.run(scale=SCALE, names=["NoSuchBenchmark"])


class TestCustomInstancePath:
    def test_evaluate_benchmark_without_paper_row(self):
        # A custom instance carries no paper columns; the row must come
        # back with them empty instead of raising (regression test).
        instance = generate("Bro217", scale=SCALE, seed=0)
        custom = type(instance)(
            name="custom", family="synthetic",
            automaton=instance.automaton,
            input_bytes=instance.input_bytes)
        row = table4.evaluate_benchmark(custom, scale=SCALE)
        assert row["benchmark"] == "custom"
        assert row["paper_sunder"] is None
        assert row["paper_ap"] is None
        assert row["sunder_overhead"] >= 1.0

    def test_evaluate_benchmark_matches_stage_path(self):
        instance = generate("Bro217", scale=SCALE, seed=0)
        direct = table4.evaluate_benchmark(instance, scale=SCALE)
        rows, _ = table4.run(scale=SCALE, seed=0, names=["Bro217"])
        assert direct == rows[0]
