"""Fleet telemetry: snapshot merge, span stitching, pool determinism."""

import os

import pytest

from repro import obs
from repro.errors import ObservabilityError
from repro.obs import fleet
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import TraceCollector
from repro.sim.parallel import ParallelRunner


def _telemetry_job(job):
    """Module-level (picklable) job that records metrics and spans."""
    instruments = obs.OBS.instruments
    instruments.engine_runs.labels(engine="fleet-test").inc()
    instruments.engine_cycles.labels(engine="fleet-test").inc(job)
    instruments.engine_active_states.labels(engine="fleet-test").observe(job)
    with obs.trace_span("fleettest.outer", job=job):
        with obs.trace_span("fleettest.inner"):
            pass
    return job * 2


class TestMergeSnapshot:
    def test_counters_sum_across_merges(self):
        source = MetricsRegistry()
        source.counter("jobs_total", labelnames=("kind",)).labels(
            kind="a").inc(3)
        target = MetricsRegistry()
        target.counter("jobs_total", labelnames=("kind",)).labels(
            kind="a").inc(1)
        assert target.merge_snapshot(source.snapshot()) == 1
        assert target.merge_snapshot(source.snapshot()) == 1
        assert target.get("jobs_total").labels(kind="a").value == 7

    def test_disjoint_label_sets_union(self):
        source = MetricsRegistry()
        source.counter("jobs_total", labelnames=("kind",)).labels(
            kind="b").inc(2)
        target = MetricsRegistry()
        target.counter("jobs_total", labelnames=("kind",)).labels(
            kind="a").inc(1)
        target.merge_snapshot(source.snapshot())
        metric = target.get("jobs_total")
        assert metric.labels(kind="a").value == 1
        assert metric.labels(kind="b").value == 2

    def test_gauge_takes_last_writer_in_merge_order(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.gauge("level").set(5)
        second.gauge("level").set(9)
        target = MetricsRegistry()
        target.merge_snapshot(first.snapshot())
        target.merge_snapshot(second.snapshot())
        assert target.get("level").value == 9

    def test_histogram_merges_bucket_wise(self):
        source = MetricsRegistry()
        histogram = source.histogram("h", buckets=(1, 2, 4))
        for value in (0.5, 1.5, 3.0, 9.0):
            histogram.observe(value)
        target = MetricsRegistry()
        target.histogram("h", buckets=(1, 2, 4)).observe(3.0)
        target.merge_snapshot(source.snapshot())
        merged = target.get("h")
        assert merged.count == 5
        assert merged.sum == pytest.approx(17.0)
        assert merged.bucket_counts() == [1, 2, 4, 5]
        # Merging again doubles the contribution (per-bucket increments,
        # not cumulative counts, are folded in).
        target.merge_snapshot(source.snapshot())
        assert target.get("h").bucket_counts() == [2, 4, 7, 9]

    def test_histogram_bound_mismatch_raises(self):
        source = MetricsRegistry()
        source.histogram("h", buckets=(1, 2)).observe(1)
        target = MetricsRegistry()
        target.histogram("h", buckets=(1, 2, 4)).observe(1)
        with pytest.raises(ObservabilityError):
            target.merge_snapshot(source.snapshot())

    def test_kind_mismatch_raises(self):
        source = MetricsRegistry()
        source.counter("x").inc()
        target = MetricsRegistry()
        target.gauge("x").set(1)
        with pytest.raises(ObservabilityError):
            target.merge_snapshot(source.snapshot())

    def test_missing_metrics_created_with_shape(self):
        source = MetricsRegistry()
        source.counter("c", help="help!", labelnames=("k",)).labels(
            k="v").inc(2)
        source.histogram("h", buckets=(1, 8)).observe(3)
        target = MetricsRegistry()
        assert target.merge_snapshot(source.snapshot()) == 2
        assert target.get("c").labelnames == ("k",)
        assert target.get("c").help == "help!"
        assert target.get("h").buckets == (1.0, 8.0)
        assert target.get("h").count == 1

    def test_empty_snapshot_and_sampleless_metrics_are_noops(self):
        source = MetricsRegistry()
        source.counter("unused", labelnames=("k",))  # parent, no children
        target = MetricsRegistry()
        assert target.merge_snapshot(source.snapshot()) == 0
        assert target.merge_snapshot({"version": 1, "metrics": []}) == 0
        assert "unused" not in target


class TestEnvelope:
    def test_build_and_validate_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        trace = TraceCollector()
        with trace.span("s"):
            pass
        envelope = fleet.build_envelope(registry, trace, context={"span": 0})
        assert fleet.validate_envelope(envelope) is envelope
        assert envelope["worker"] == os.getpid()
        assert envelope["context"] == {"span": 0}
        assert len(envelope["spans"]) == 1

    def test_validate_rejects_drift(self):
        registry = MetricsRegistry()
        good = fleet.build_envelope(registry)
        for mutation in (
            {"schema": "other"},
            {"version": 99},
            {"metrics": None},
            {"spans": None},
        ):
            with pytest.raises(ObservabilityError):
                fleet.validate_envelope(dict(good, **mutation))
        with pytest.raises(ObservabilityError):
            fleet.validate_envelope("not a dict")


class TestGraft:
    def _worker_records(self):
        trace = TraceCollector()
        with trace.span("outer", k=1):
            with trace.span("inner"):
                pass
        return [span.as_dict() for span in trace.finished()]

    def test_graft_reparents_under_context(self):
        parent = TraceCollector()
        with parent.span("parallel.map") as active:
            context = active.context
        assert parent.graft(self._worker_records(), context=context,
                            thread_id=4242) == 2
        spans = {span.name: span for span in parent.finished()}
        fanout = spans["parallel.map"]
        assert spans["outer"].parent == fanout.index
        assert spans["outer"].depth == fanout.depth + 1
        assert spans["inner"].parent == spans["outer"].index
        assert spans["inner"].depth == fanout.depth + 2
        assert spans["outer"].thread_id == 4242
        assert spans["outer"].attrs == {"k": 1}

    def test_graft_without_context_lands_at_top_level(self):
        parent = TraceCollector()
        assert parent.graft(self._worker_records()) == 2
        spans = {span.name: span for span in parent.finished()}
        assert spans["outer"].parent is None
        assert spans["outer"].depth == 0

    def test_graft_skips_unfinished_records(self):
        records = self._worker_records()
        records[0]["duration"] = None
        parent = TraceCollector()
        # The finished child of the unfinished root falls back to the
        # graft base instead of a dangling parent link.
        assert parent.graft(records) == 1
        (span,) = parent.finished()
        assert span.parent is None

    def test_current_context_tracks_innermost_open_span(self):
        trace = TraceCollector()
        assert trace.current_context() is None
        with trace.span("a"):
            with trace.span("b"):
                context = trace.current_context()
                assert context["name"] == "b"
                assert context["depth"] == 1


class TestRunObservedJob:
    def test_detached_process_captures_an_envelope(self):
        assert not obs.OBS.active
        payload = (_telemetry_job, 3, {"span": 7, "name": "parallel.map",
                                       "depth": 0}, True)
        result, envelope = fleet.run_observed_job(payload)
        assert result == 6
        assert not obs.OBS.active  # detached again afterwards
        fleet.validate_envelope(envelope)
        names = {entry["name"] for entry in envelope["metrics"]["metrics"]
                 if entry["samples"]}
        assert "repro_engine_cycles_total" in names
        assert "repro_parallel_job_seconds" in names
        assert [span["name"] for span in envelope["spans"]] == [
            "fleettest.outer", "fleettest.inner"]
        assert envelope["context"]["span"] == 7

    def test_capture_spans_false_ships_no_spans(self):
        _, envelope = fleet.run_observed_job((_telemetry_job, 1, None, False))
        assert envelope["spans"] == []

    def test_attached_process_defers_to_outer_capture(self):
        registry = MetricsRegistry()
        with obs.collecting(registry=registry):
            result, envelope = fleet.run_observed_job(
                (_telemetry_job, 2, None, True))
        assert result == 4
        assert envelope is None
        assert registry.get(
            "repro_engine_runs_total").labels(engine="fleet-test").value == 1


class TestMergeEnvelopes:
    def test_noop_when_detached(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        envelope = fleet.build_envelope(registry)
        assert fleet.merge_envelopes([envelope]) == 0

    def test_merges_in_order_with_provenance(self):
        envelopes = []
        for worker, value in ((101, 2), (202, 5)):
            registry = MetricsRegistry()
            registry.counter("repro_engine_cycles_total",
                             labelnames=("engine",)).labels(
                engine="fleet-test").inc(value)
            envelopes.append(fleet.build_envelope(registry, worker=worker))
        parent = MetricsRegistry()
        with obs.collecting(registry=parent):
            assert fleet.merge_envelopes(envelopes + [None]) == 2
        assert parent.get("repro_engine_cycles_total").labels(
            engine="fleet-test").value == 7
        provenance = parent.get("repro_fleet_envelopes_total")
        assert provenance.labels(worker="101").value == 1
        assert provenance.labels(worker="202").value == 1
        assert parent.get("repro_fleet_merged_samples_total").value == 2


def _span_shape(trace):
    """Structure of a trace modulo timestamps, thread ids, and the
    fan-out span's worker-count attribute."""
    spans = [span for span in trace.finished()
             if span.name != "parallel.map"]
    by_index = {span.index: span for span in trace.finished()}
    return [
        (span.name, span.depth, span.attrs,
         by_index[span.parent].name if span.parent is not None else None)
        for span in spans
    ]


class TestPoolDeterminism:
    JOBS = [3, 1, 4, 1, 5, 9, 2, 6]

    def _run(self, workers):
        registry = MetricsRegistry()
        trace = TraceCollector()
        with obs.collecting(registry=registry, trace=trace):
            results = ParallelRunner(workers).map(_telemetry_job, self.JOBS)
        return results, registry, trace

    def test_merged_counters_equal_serial_totals(self):
        serial_results, serial_registry, _ = self._run(1)
        pool_results, pool_registry, _ = self._run(4)
        assert pool_results == serial_results == [j * 2 for j in self.JOBS]
        for name in ("repro_engine_runs_total", "repro_engine_cycles_total"):
            serial = serial_registry.get(name).labels(engine="fleet-test")
            pooled = pool_registry.get(name).labels(engine="fleet-test")
            assert pooled.value == serial.value

    def test_merged_histograms_equal_serial_buckets(self):
        _, serial_registry, _ = self._run(1)
        _, pool_registry, _ = self._run(4)
        serial = serial_registry.get(
            "repro_engine_active_states").labels(engine="fleet-test")
        pooled = pool_registry.get(
            "repro_engine_active_states").labels(engine="fleet-test")
        assert pooled.bucket_counts() == serial.bucket_counts()
        assert pooled.count == serial.count
        assert pooled.sum == pytest.approx(serial.sum)

    def test_stitched_span_tree_matches_serial_shape(self):
        _, _, serial_trace = self._run(1)
        _, pool_registry, pool_trace = self._run(4)
        assert _span_shape(pool_trace) == _span_shape(serial_trace)
        # Worker spans hang off the live parallel.map span ...
        spans = pool_trace.finished()
        fanout = [span for span in spans if span.name == "parallel.map"]
        assert len(fanout) == 1
        outer = [span for span in spans if span.name == "fleettest.outer"]
        assert {span.parent for span in outer} == {fanout[0].index}
        # ... on one track per worker process, none on the parent thread.
        assert all(span.thread_id != fanout[0].thread_id for span in outer)
        stitched = pool_registry.get("repro_fleet_spans_stitched_total")
        assert stitched.value == len(self.JOBS) * 2

    def test_pool_without_trace_still_merges_metrics(self):
        registry = MetricsRegistry()
        with obs.collecting(registry=registry):
            ParallelRunner(4).map(_telemetry_job, self.JOBS)
        assert registry.get("repro_engine_cycles_total").labels(
            engine="fleet-test").value == sum(self.JOBS)

    def test_per_job_seconds_recorded_in_both_modes(self):
        _, serial_registry, _ = self._run(1)
        _, pool_registry, _ = self._run(4)
        serial = serial_registry.get("repro_parallel_job_seconds")
        pooled = pool_registry.get("repro_parallel_job_seconds")
        assert serial.labels(mode="serial").count == len(self.JOBS)
        assert pooled.labels(mode="process").count == len(self.JOBS)
