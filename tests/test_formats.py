"""ANML and MNRL serialization tests."""

import pytest

from repro.automata import Automaton, StartKind, SymbolSet, anml, mnrl, single_pattern
from repro.errors import FormatError
from repro.regex import compile_ruleset
from repro.sim import BitsetEngine
from repro.transform import to_rate


def _behavioral_equal(a, b, data):
    """Equal report sets, with codes normalized to strings.

    ANML serializes report codes as XML attribute text, so integer codes
    come back as strings — an inherent property of the format.
    """
    def keys(machine):
        recorder = BitsetEngine(machine).run(data)
        return {(pos, str(code)) for pos, code in recorder.event_keys()}

    return keys(a) == keys(b)


class TestAnmlCharclass:
    def test_star(self):
        assert anml.parse_charclass("*").is_full()
        assert anml.parse_charclass("[*]").is_full()

    def test_ranges_and_escapes(self):
        sset = anml.parse_charclass("[a-c\\x00\\n]")
        assert sorted(sset) == [0, ord("\n"), ord("a"), ord("b"), ord("c")]

    def test_negation(self):
        sset = anml.parse_charclass("[^a]")
        assert ord("a") not in sset and len(sset) == 255

    def test_unbracketed_rejected(self):
        with pytest.raises(FormatError):
            anml.parse_charclass("abc")

    def test_dangling_escape_rejected(self):
        with pytest.raises(FormatError):
            anml.parse_charclass("[\\]")

    def test_bad_hex_rejected(self):
        with pytest.raises(FormatError):
            anml.parse_charclass("[\\xZ]")


class TestAnmlRoundtrip:
    def test_roundtrip_preserves_behavior(self, small_ruleset):
        text = anml.dumps(small_ruleset)
        parsed = anml.loads(text)
        data = list(b"abc123xyzhello b5d")
        assert _behavioral_equal(small_ruleset, parsed, data)

    def test_roundtrip_preserves_structure(self):
        machine = single_pattern("p", b"ab", report_code="42")
        parsed = anml.loads(anml.dumps(machine))
        assert len(parsed) == 2
        assert parsed.state("p_0").start is StartKind.ALL_INPUT
        assert parsed.state("p_1").report_code == "42"

    def test_strided_automaton_rejected(self, abc_automaton):
        strided = to_rate(abc_automaton, 2)
        with pytest.raises(FormatError):
            anml.dumps(strided)

    def test_missing_network_rejected(self):
        with pytest.raises(FormatError):
            anml.loads("<anml></anml>")

    def test_malformed_xml_rejected(self):
        with pytest.raises(FormatError):
            anml.loads("<not xml")

    def test_file_roundtrip(self, tmp_path, abc_automaton):
        path = tmp_path / "m.anml"
        anml.dump(abc_automaton, str(path))
        parsed = anml.load(str(path))
        assert _behavioral_equal(abc_automaton, parsed, list(b"zabcz"))


class TestMnrl:
    def test_roundtrip_byte_automaton(self, small_ruleset):
        parsed = mnrl.loads(mnrl.dumps(small_ruleset))
        data = list(b"abc123xyz hello")
        assert _behavioral_equal(small_ruleset, parsed, data)

    def test_roundtrip_strided_automaton(self, abc_automaton):
        strided = to_rate(abc_automaton, 4)
        parsed = mnrl.loads(mnrl.dumps(strided))
        assert parsed.arity == 4
        assert parsed.bits == 4
        assert parsed.start_period == strided.start_period
        from repro.sim import stream_for
        vectors, limit = stream_for(strided, b"xxabcabc")
        assert (
            BitsetEngine(strided).run(vectors, position_limit=limit).event_keys()
            == BitsetEngine(parsed).run(vectors, position_limit=limit).event_keys()
        )

    def test_report_offsets_preserved(self, abc_automaton):
        strided = to_rate(abc_automaton, 4)
        parsed = mnrl.loads(mnrl.dumps(strided))
        want = {s.id: s.report_offsets for s in strided if s.report}
        got = {s.id: s.report_offsets for s in parsed if s.report}
        assert want == got

    def test_bad_json_rejected(self):
        with pytest.raises(FormatError):
            mnrl.loads("{not json")

    def test_missing_nodes_rejected(self):
        with pytest.raises(FormatError):
            mnrl.loads("{}")

    def test_unknown_node_type_rejected(self):
        with pytest.raises(FormatError):
            mnrl.loads('{"nodes": [{"type": "upCounter", "id": "x"}]}')

    def test_file_roundtrip(self, tmp_path, abc_automaton):
        path = tmp_path / "m.mnrl"
        mnrl.dump(abc_automaton, str(path))
        parsed = mnrl.load(str(path))
        assert _behavioral_equal(abc_automaton, parsed, list(b"zabcz"))
