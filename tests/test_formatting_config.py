"""Tests for table formatting and SunderConfig derived properties."""

import pytest
from hypothesis import given, strategies as st

from repro.core import SunderConfig
from repro.errors import ArchitectureError
from repro.experiments.formatting import format_table, ratio_string


class TestFormatTable:
    def test_alignment_and_missing_values(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 100}]
        text = format_table(rows, [("a", "A"), ("b", "B")], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("A")
        assert "2.50" in text
        assert "-" in lines[-1]  # missing b renders as '-'

    def test_empty_rows(self):
        text = format_table([], [("a", "Column")])
        assert "Column" in text

    def test_custom_float_format(self):
        text = format_table([{"x": 1.23456}], [("x", "X")],
                            float_format="%.4f")
        assert "1.2346" in text

    def test_ratio_string(self):
        assert ratio_string(1.5, 2.0) == "1.50 (paper 2.00)"
        assert ratio_string(1.5, None) == "1.50"

    def test_wide_values_stretch_columns(self):
        rows = [{"name": "x" * 40}]
        text = format_table(rows, [("name", "N")])
        assert "x" * 40 in text


class TestConfigProperties:
    @given(st.sampled_from([1, 2, 4]),
           st.integers(1, 64), st.integers(1, 64))
    def test_derived_geometry_invariants(self, rate, m, n):
        config = SunderConfig(rate_nibbles=rate, report_bits=m,
                              metadata_bits=n)
        # Rows always partition exactly into matching + reporting.
        assert config.matching_rows + config.report_rows == 256
        assert config.matching_rows == 16 * rate
        # Entries never overflow a row.
        assert config.entries_per_row * config.entry_bits <= 256
        assert config.report_capacity == (
            config.report_rows * config.entries_per_row
        )
        # Equation (1): the counter addresses every entry slot.
        assert 2 ** config.local_counter_bits() >= config.report_capacity

    def test_bits_per_cycle(self):
        for rate, bits in ((1, 4), (2, 8), (4, 16)):
            assert SunderConfig(rate_nibbles=rate).bits_per_cycle == bits

    def test_repr_mentions_capacity(self):
        assert "capacity" in repr(SunderConfig())

    @pytest.mark.parametrize("kwargs", [
        {"rate_nibbles": 8},
        {"report_bits": 0},
        {"report_bits": 300},
        {"metadata_bits": 0},
        {"report_bits": 128, "metadata_bits": 129},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ArchitectureError):
            SunderConfig(**kwargs)
