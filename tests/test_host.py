"""Host-interface tests: the Section 6 memory-mapped access model."""

import numpy as np
import pytest

from repro.core import HostInterface, SunderConfig, SunderDevice
from repro.core.host import ROW_BYTES, AddressMap
from repro.errors import ArchitectureError
from repro.regex import compile_ruleset
from repro.sim import stream_for
from repro.transform import to_rate


@pytest.fixture
def configured_device():
    machine = compile_ruleset(["ab", "cd"])
    strided = to_rate(machine, 4)
    config = SunderConfig(rate_nibbles=4, report_bits=16, fifo=False)
    device = SunderDevice(config)
    device.configure(strided)
    vectors, limit = stream_for(strided, b"xxabxxcdxx")
    device.run(vectors, position_limit=limit)
    return device


class TestAddressMap:
    def test_roundtrip(self, configured_device):
        address_map = AddressMap(configured_device)
        for coords in [(0, 0, 0), (0, 1, 7), (0, 3, 255)]:
            assert address_map.locate(address_map.address_of(*coords)) == coords

    def test_addresses_are_row_aligned_and_distinct(self, configured_device):
        address_map = AddressMap(configured_device)
        a = address_map.address_of(0, 0, 0)
        b = address_map.address_of(0, 0, 1)
        assert b - a == ROW_BYTES

    def test_unaligned_address_rejected(self, configured_device):
        address_map = AddressMap(configured_device)
        with pytest.raises(ArchitectureError):
            address_map.locate(address_map.base_address + 1)

    def test_out_of_range_rejected(self, configured_device):
        address_map = AddressMap(configured_device)
        with pytest.raises(ArchitectureError):
            address_map.address_of(5, 0, 0)


class TestHostVerbs:
    def test_load_reads_subarray_row(self, configured_device):
        host = HostInterface(configured_device)
        pu = configured_device.clusters[0].pus[0]
        row = pu.reporting.first_row
        address = host.address_map.address_of(0, 0, row)
        assert (host.load_row(address) == pu.subarray.read_row(row)).all()

    def test_store_writes_subarray_row(self, configured_device):
        host = HostInterface(configured_device)
        address = host.address_map.address_of(0, 0, 255)
        pattern = np.arange(256) % 2 == 0
        host.store_row(address, pattern)
        pu = configured_device.clusters[0].pus[0]
        assert (pu.subarray.read_row(255) == pattern).all()

    def test_clflush_captures_used_report_rows(self, configured_device):
        host = HostInterface(configured_device)
        # The 'ab' and 'cd' reports landed in PU 0's region.
        captured = host.clflush_report_region(0, 0)
        assert captured == configured_device.clusters[0].pus[0].reporting.used_rows
        assert captured >= 1
        assert len(host.flushed_rows) == captured

    def test_read_report_entries_selective(self, configured_device):
        host = HostInterface(configured_device)
        entries = host.read_report_entries(0, 0)
        assert [entry.cycle for entry in entries] == [1, 3]
