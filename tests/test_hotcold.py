"""Hot/cold splitting extension tests (Liu et al. complementarity)."""

import pytest

from repro.errors import WorkloadError
from repro.extensions import profile_enabled_states, split_hot_cold
from repro.extensions.hotcold import BOUNDARY_CODE_PREFIX
from repro.regex import compile_ruleset
from repro.sim import BitsetEngine


@pytest.fixture(scope="module")
def ruleset():
    # Rule 0 is hot (the input is full of 'ab...'); rules 1-2 are cold.
    return compile_ruleset([
        ("abcd", "hot-rule"),
        ("zzzzzzzz", "cold-rule-1"),
        ("yyyyyyyy", "cold-rule-2"),
    ])


SAMPLE = b"ab abc abcd xx abcd ab" * 4


class TestProfiling:
    def test_hot_states_dominate(self, ruleset):
        profile = profile_enabled_states(ruleset, list(SAMPLE))
        active_ids = set(profile)
        # Only rule-0 interior states ever activate on this input.
        codes = {
            ruleset.state(state_id).report_code
            for state_id in active_ids if ruleset.state(state_id).report
        }
        assert codes <= {"hot-rule"}
        assert profile.most_common(1)[0][1] > 1

    def test_silent_input_profiles_empty(self, ruleset):
        assert profile_enabled_states(ruleset, list(b"qqqq")) == {}


class TestSplit:
    def test_split_shrinks_hardware(self, ruleset):
        split = split_hot_cold(ruleset, list(SAMPLE), activity_coverage=0.95)
        assert split.hardware_states < len(ruleset)
        assert split.state_savings > 0.3
        split.hot_automaton.validate()

    def test_hot_half_preserves_hot_reports(self, ruleset):
        split = split_hot_cold(ruleset, list(SAMPLE))
        data = list(b"xx abcd yy abcd")
        hot_keys = {
            key for key in split.run(data).event_keys()
            if not str(key[1]).startswith(BOUNDARY_CODE_PREFIX)
        }
        want = {
            key for key in BitsetEngine(ruleset).run(data).event_keys()
            if key[1] == "hot-rule"
        }
        assert hot_keys == want

    def test_boundary_states_report_intermediates(self):
        # A chain where profiling only sees the prefix: the boundary
        # between hot prefix and cold suffix must emit boundary reports.
        machine = compile_ruleset([("abcdefgh", "deep")])
        sample = list(b"abcd abcd abc")  # never reaches the suffix
        split = split_hot_cold(machine, sample, activity_coverage=1.0)
        assert split.boundary_ids
        recorder = split.run(list(b"abcde"))
        codes = {str(code) for _, code in recorder.event_keys()}
        assert any(code.startswith(BOUNDARY_CODE_PREFIX) for code in codes)

    def test_intermediate_fraction(self):
        machine = compile_ruleset([("abcdefgh", "deep")])
        split = split_hot_cold(machine, list(b"abcd" * 5),
                               activity_coverage=1.0)
        fraction = split.intermediate_report_fraction(list(b"abcd" * 10))
        assert fraction == 1.0  # the full pattern never completes

    def test_coverage_validation(self, ruleset):
        with pytest.raises(WorkloadError):
            split_hot_cold(ruleset, list(SAMPLE), activity_coverage=0.0)

    def test_full_coverage_keeps_active_states(self, ruleset):
        split = split_hot_cold(ruleset, list(SAMPLE), activity_coverage=1.0)
        profile = profile_enabled_states(ruleset, list(SAMPLE))
        assert set(profile) <= split.hot_ids
