"""Technology-model tests: Tables 2 & 5 and the Figure 9 area model."""

import pytest

from repro.hwmodel import (
    CA_PIPELINE,
    IMPALA_PIPELINE,
    SUNDER_8T,
    SUNDER_PIPELINE,
    ap_frequency_ghz,
    ca_area_um2,
    figure9_breakdown,
    impala_area_um2,
    project_frequency,
    sunder_area_um2,
    table2_rows,
    table5_rows,
)


class TestTable2:
    def test_published_values(self):
        rows = {row["usage"]: row for row in table2_rows()}
        assert rows["state-matching (Impala)"]["delay_ps"] == 180
        assert rows["state-matching (CA)"]["area_um2"] == 9394
        assert SUNDER_8T.delay_ps == 150 and SUNDER_8T.area_um2 == 20102

    def test_derived_density(self):
        assert SUNDER_8T.bits == 256 * 256
        assert SUNDER_8T.area_per_bit_um2 == pytest.approx(0.3067, abs=1e-3)


class TestTable5:
    def test_operating_frequencies_match_paper(self):
        assert SUNDER_PIPELINE.operating_frequency_ghz == pytest.approx(3.6, abs=0.05)
        assert IMPALA_PIPELINE.operating_frequency_ghz == pytest.approx(5.0, abs=0.05)
        assert CA_PIPELINE.operating_frequency_ghz == pytest.approx(3.6, abs=0.05)

    def test_critical_paths(self):
        assert SUNDER_PIPELINE.critical_path_ps == 249
        assert IMPALA_PIPELINE.critical_path_ps == 180
        assert CA_PIPELINE.critical_path_ps == 249

    def test_ap_projection(self):
        assert ap_frequency_ghz(50) == 0.133
        assert ap_frequency_ghz(14) == pytest.approx(1.69, abs=0.02)

    def test_projection_is_quadratic(self):
        assert project_frequency(1.0, 28, 14) == pytest.approx(4.0)

    def test_table5_rows_complete(self):
        rows = table5_rows()
        assert len(rows) == 5
        assert all("operating_frequency_ghz" in row for row in rows)


class TestFigure9Area:
    def test_sunder_reporting_is_two_percent(self):
        parts = sunder_area_um2(32768)
        assert parts["reporting"] / parts["matching"] == pytest.approx(0.02)

    def test_area_scales_with_states(self):
        small = sum(sunder_area_um2(1024).values())
        large = sum(sunder_area_um2(32768).values())
        assert large > small * 20

    def test_breakdown_ordering_matches_paper(self):
        rows = {row["architecture"]: row for row in figure9_breakdown()}
        assert rows["Sunder"]["ratio_to_sunder"] == 1.0
        # Paper ordering: AP > Impala, CA > Sunder.
        assert rows["AP"]["ratio_to_sunder"] == pytest.approx(2.1)
        assert rows["Impala"]["ratio_to_sunder"] > 1.0
        assert rows["CA"]["ratio_to_sunder"] > 1.0

    def test_baselines_pay_for_ap_reporting(self):
        ca = ca_area_um2(32768)
        impala = impala_area_um2(32768)
        sunder = sunder_area_um2(32768)
        assert ca["reporting"] > 10 * sunder["reporting"]
        assert impala["reporting"] > 10 * sunder["reporting"]


class TestThroughputPerArea:
    def test_three_orders_of_magnitude_vs_ap(self):
        from repro.hwmodel import throughput_per_area
        rows = {row["architecture"]: row for row in throughput_per_area()}
        # The conclusion's headline: ~1000x throughput/area vs the AP.
        assert 500 < rows["AP (50nm silicon)"]["sunder_density_ratio"] < 3000
        # Sunder also leads the SRAM designs on density.
        assert rows["Impala"]["sunder_density_ratio"] > 1.0
        assert rows["CA"]["sunder_density_ratio"] > 1.0

    def test_density_is_throughput_over_area(self):
        from repro.hwmodel import throughput_per_area
        for row in throughput_per_area():
            assert row["gbps_per_mm2"] == pytest.approx(
                row["gbps"] / row["area_mm2"]
            )
