"""Differential suite: indexed automaton kernels vs the legacy kernels.

The indexed kernels (``repro.automata.indexed``, the ``_square`` body of
``repro.transform.striding``, and ``ops.minimize``) must be *bit-exact*
with the string-graph implementations they replaced — same state ids,
same insertion order, same survivor choices, same ``dumps()`` text.  The
legacy bodies survive as unmemoized oracles (``square_unindexed``,
``minimize_unindexed``) purely so this suite can keep pinning them.

Bit-exactness is what keeps warm artifact stores warm: cache keys are
``CODE_VERSION`` + structural fingerprints, and neither changed in the
indexed rewrite, so artifacts written by the legacy kernels must still
be served to the indexed ones (pinned below with literal fingerprints
and a store round-trip).
"""

import random

import pytest

from repro.automata import Automaton, StartKind, SymbolSet
from repro.automata import ops
from repro.automata.indexed import IndexedAutomaton
from repro.automata.ops import minimize, minimize_unindexed
from repro.regex import compile_pattern
from repro.transform import cache as transform_cache
from repro.transform import to_nibbles
from repro.transform.striding import _square, square, square_unindexed, stride

#: Structural fingerprint of ``square(to_nibbles(he(llo)+))`` as produced
#: by the pre-indexed pipeline.  If this changes, every artifact store in
#: the field goes cold — bump ``transform.cache.CODE_VERSION`` instead of
#: updating the constant unless the change is deliberate.
PINNED_SQUARE_FP = (
    "dbfa11cddba6a2cd3f8d02227158330e75839929bdd62b3f2d952b61d3dbc063")


def rich_random_automaton(seed, n_states=14, bits=4, arity=1,
                          start_period=1, edge_density=0.18,
                          report_fraction=0.35, prune=True):
    """A random homogeneous NFA exercising every structural dimension.

    Varies symbol masks per position, start kinds, report codes, and
    *interior* report offsets (positions after an offset are forced to
    full wildcards, preserving the striding offset invariant).
    """
    rng = random.Random(seed)
    automaton = Automaton(name="rand%d" % seed, bits=bits, arity=arity,
                          start_period=start_period)
    full = SymbolSet.full(bits)
    ids = []
    for index in range(n_states):
        report = rng.random() < report_fraction
        if report and arity > 1 and rng.random() < 0.5:
            offset = rng.randrange(arity)
            offsets = (offset,)
        else:
            offset = arity - 1
            offsets = None  # Ste default: last position
        symbols = []
        for position in range(arity):
            if report and position > offset:
                symbols.append(full)
            elif rng.random() < 0.2:
                symbols.append(full)
            else:
                members = rng.sample(range(1 << bits),
                                     rng.randint(1, min(6, 1 << bits)))
                symbols.append(SymbolSet.of(bits, members))
        start = StartKind.NONE
        if index == 0:
            start = StartKind.ALL_INPUT
        elif rng.random() < 0.2:
            start = rng.choice(
                [StartKind.ALL_INPUT, StartKind.START_OF_DATA])
        state_id = "s%d" % index
        automaton.new_state(
            state_id,
            tuple(symbols) if arity > 1 else symbols[0],
            start=start,
            report=report,
            report_code="c%d" % index if report and rng.random() < 0.7
            else None,
            report_offsets=offsets if report else None,
        )
        ids.append(state_id)
    for src in ids:
        for dst in ids:
            if rng.random() < edge_density:
                automaton.add_transition(src, dst)
    if prune:
        automaton.prune_unreachable()
        automaton.validate()
    return automaton


#: 48 machines: 16 seeds x (arity, start_period) in a shape grid.  The
#: issue floor is 40; keep at least that many cases when editing.
CASES = [(seed, arity, period)
         for seed in range(16)
         for arity, period in ((1, 1), (2, 2), (2, 4))]


def _ids(case):
    return "seed%d-arity%d-period%d" % case


@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_square_bit_exact(case):
    seed, arity, period = case
    machine = rich_random_automaton(seed, arity=arity, start_period=period)
    for minimized in (False, True):
        indexed = _square(machine, minimized=minimized, name=None)
        legacy = square_unindexed(machine, minimized=minimized)
        assert indexed.dumps() == legacy.dumps()
        indexed.validate()


@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_minimize_bit_exact(case):
    seed, arity, period = case
    machine = rich_random_automaton(seed, arity=arity, start_period=period)
    # Squared-but-unminimized machines are the richest minimize inputs
    # (duplicate behaviours by construction).
    source = square_unindexed(machine, minimized=False)
    one, other = source.copy(), source.copy()
    removed_indexed = minimize(one)
    removed_legacy = minimize_unindexed(other)
    assert removed_indexed == removed_legacy
    assert one.dumps() == other.dumps()
    one.validate()


@pytest.mark.parametrize("seed", range(20))
def test_prune_and_depth_bound_bit_exact(seed):
    machine = rich_random_automaton(seed, n_states=18, edge_density=0.12,
                                    prune=False)
    direct = machine.copy()
    direct.prune_unreachable()

    indexed = IndexedAutomaton.from_automaton(machine.copy())
    indexed.prune_unreachable()
    via_index = machine.copy()
    indexed.write_back(via_index)
    assert via_index.dumps() == direct.dumps()

    assert (IndexedAutomaton.from_automaton(direct).depth_bound()
            == direct.depth_bound())


def test_pinned_fingerprint_stability():
    machine = compile_pattern("he(llo)+", report_code="hello")
    squared = _square(to_nibbles(machine), minimized=True, name=None)
    assert squared.fingerprint() == PINNED_SQUARE_FP


def test_warm_store_stays_warm(tmp_path):
    """Artifacts written by the legacy kernel serve the indexed kernel."""
    store = transform_cache.configure(directory=str(tmp_path))
    machine = to_nibbles(compile_pattern("abc[0-9]x?", report_code="k"))
    legacy = square_unindexed(machine, minimized=True)
    key = store.key("square", machine, minimized=True, name=None)
    store.put(key, legacy, op="square")
    store.stats["memory_hits"] = 0
    try:
        served = square(machine, minimized=True)
        assert store.stats["memory_hits"] + store.stats["disk_hits"] >= 1
        assert served.dumps() == legacy.dumps()
    finally:
        transform_cache.configure()


def test_minimize_skip_markers(tmp_path):
    """A machine once minimized is recognized and skipped thereafter."""
    machine = square_unindexed(
        to_nibbles(compile_pattern("ab+c", report_code="k")),
        minimized=False)
    transform_cache.configure(directory=str(tmp_path))
    try:
        removed = minimize(machine)
        fingerprint = machine.fingerprint()
        assert ops._is_known_minimal(fingerprint)
        # A structurally identical copy (fresh object, same fingerprint)
        # short-circuits without another refinement pass.
        again = machine.copy()
        assert minimize(again) == 0
        assert again.dumps() == machine.dumps()
        # The marker also lives on disk: a fresh in-process memo (new
        # cache, same directory) still sees it.
        ops._MINIMAL_FINGERPRINTS.clear()
        transform_cache.configure(directory=str(tmp_path))
        assert ops._is_known_minimal(fingerprint)
        assert removed >= 0
    finally:
        ops._MINIMAL_FINGERPRINTS.clear()
        transform_cache.configure()


def test_square_records_result_as_minimal():
    machine = to_nibbles(compile_pattern("xy+z", report_code="k"))
    transform_cache.configure()  # fresh store: the build must run
    ops._MINIMAL_FINGERPRINTS.clear()
    try:
        squared = square(machine, minimized=True)
        assert ops._is_known_minimal(squared.fingerprint())
        assert minimize(squared.copy()) == 0
    finally:
        transform_cache.configure()


def test_shallow_clone_shares_states_not_edges():
    machine = rich_random_automaton(3)
    clone = machine.shallow_clone()
    assert clone.dumps() == machine.dumps()
    some_id = machine.state_ids()[0]
    assert clone.state(some_id) is machine.state(some_id)
    # Edge containers are fresh: growing the clone leaves the original.
    other = machine.state_ids()[-1]
    before = len(machine.successors(some_id))
    clone.add_transition(some_id, other)
    clone.remove_transition(some_id, other)
    assert len(machine.successors(some_id)) == before


def test_stride_factor_one_is_shallow():
    transform_cache.configure()  # fresh, memory-only
    try:
        machine = rich_random_automaton(5)
        relabeled = stride(machine, 1)
        assert relabeled is not machine
        assert relabeled.name == machine.name
        assert relabeled.dumps() == machine.dumps()
    finally:
        transform_cache.configure()


def test_merge_in_matches_manual_union():
    left = rich_random_automaton(7, n_states=10)
    right = rich_random_automaton(8, n_states=9)
    merged = left.copy(name="merged")
    mapping = merged.merge_in(right, prefix="r:")
    assert set(mapping) == set(right.state_ids())
    assert len(merged) == len(left) + len(right)
    for state in right:
        twin = merged.state(mapping[state.id])
        assert twin.behavior_key() == state.behavior_key()
        assert ({mapping[d] for d in right.successors(state.id)}
                == merged.successors(mapping[state.id]))
    merged.validate()
