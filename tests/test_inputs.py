"""Input-stream conversion tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim import (
    bytes_to_nibbles,
    nibble_position_to_byte,
    nibbles_to_bytes,
    stream_for,
    vectorize,
)


class TestNibbleConversion:
    def test_high_nibble_first(self):
        assert bytes_to_nibbles(b"\xAB") == [0xA, 0xB]

    @given(st.binary(max_size=64))
    def test_roundtrip(self, data):
        assert nibbles_to_bytes(bytes_to_nibbles(data)) == data

    def test_odd_length_rejected(self):
        with pytest.raises(SimulationError):
            nibbles_to_bytes([1, 2, 3])

    def test_out_of_range_byte_rejected(self):
        with pytest.raises(SimulationError):
            bytes_to_nibbles([300])


class TestVectorize:
    def test_exact_multiple(self):
        vectors, length = vectorize([1, 2, 3, 4], 2)
        assert vectors == [(1, 2), (3, 4)]
        assert length == 4

    def test_padding(self):
        vectors, length = vectorize([1, 2, 3], 2, pad=0)
        assert vectors == [(1, 2), (3, 0)]
        assert length == 3

    def test_empty(self):
        vectors, length = vectorize([], 4)
        assert vectors == [] and length == 0

    @given(st.lists(st.integers(0, 15), max_size=40), st.integers(1, 4))
    def test_flattening_recovers_prefix(self, symbols, arity):
        vectors, length = vectorize(symbols, arity)
        flat = [value for vector in vectors for value in vector]
        assert flat[:length] == symbols
        assert len(flat) % arity == 0

    def test_bad_arity_rejected(self):
        with pytest.raises(SimulationError):
            vectorize([1], 0)


class TestStreamFor:
    def test_byte_automaton(self, abc_automaton):
        vectors, limit = stream_for(abc_automaton, b"ab")
        assert vectors == [(ord("a"),), (ord("b"),)]
        assert limit == 2

    def test_nibble_automaton(self, abc_automaton):
        from repro.transform import to_rate
        strided = to_rate(abc_automaton, 4)
        vectors, limit = stream_for(strided, b"abc")
        assert limit == 6  # nibbles
        assert len(vectors) == 2  # ceil(6/4)
        assert all(len(v) == 4 for v in vectors)

    def test_position_mapping(self):
        assert nibble_position_to_byte(7) == 3
