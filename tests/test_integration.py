"""End-to-end integration tests across the whole stack.

These tie everything together: regex semantics (checked against Python's
`re`), the transformation pipeline, the bit-faithful device, the host
interface, and the workload/experiment layers.
"""

import random
import re

import pytest

from repro.core import HostInterface, SunderConfig, SunderDevice
from repro.regex import compile_ruleset
from repro.sim import BitsetEngine, stream_for
from repro.transform import to_rate
from repro.workloads import generate


def _re_match_ends(pattern, data):
    """All match-end byte offsets of ``pattern`` in ``data`` (unanchored)."""
    rx = re.compile(pattern.encode())
    ends = set()
    for start in range(len(data)):
        for end in range(start, len(data)):
            if rx.fullmatch(data, start, end + 1):
                ends.add(end)
    return ends


class TestRegexToHardware:
    """regex text -> Glushkov -> nibbles -> strided -> subarrays -> reports."""

    PATTERNS = ["ab+c", "x[0-9]{2}y", "foo|bars", "q.z"]

    @pytest.mark.parametrize("rate", [1, 2, 4])
    def test_device_reports_equal_re_semantics(self, rate):
        rng = random.Random(42 + rate)
        ruleset = compile_ruleset(self.PATTERNS)
        machine = to_rate(ruleset, rate)
        device = SunderDevice(SunderConfig(rate_nibbles=rate, report_bits=16))
        device.configure(machine)

        data = bytes(rng.choice(b"abcfoxyzrs0123 q")
                     for _ in range(150)) + b"ab0bc x42y foo q.z"
        vectors, limit = stream_for(machine, data)
        result = device.run(vectors, position_limit=limit)

        got = {}
        for event in result.reports().events:
            got.setdefault(event.report_code, set()).add(event.position // 2)
        for index, pattern in enumerate(self.PATTERNS):
            assert got.get(index, set()) == _re_match_ends(pattern, data), pattern


class TestHostReadback:
    """The host reads its reports back through the address map."""

    def test_clflush_then_decode(self):
        ruleset = compile_ruleset([("needle", "N")])
        machine = to_rate(ruleset, 4)
        device = SunderDevice(SunderConfig(rate_nibbles=4, report_bits=16,
                                           fifo=False))
        device.configure(machine)
        data = b"hay needle hay needle hay"
        vectors, limit = stream_for(machine, data)
        device.run(vectors, position_limit=limit)

        host = HostInterface(device)
        entries = []
        for cluster_index, pu_index, pu in device.iter_pus():
            if pu.reporting.count:
                entries.extend(host.read_report_entries(cluster_index, pu_index))
                assert host.clflush_report_region(cluster_index, pu_index) > 0
        cycles = sorted(entry.cycle for entry in entries)
        # 'needle' ends at bytes 9 and 20 -> vector cycles 4 and 10.
        assert cycles == [4, 10]


class TestWorkloadOnDevice:
    """A generated benchmark runs bit-faithfully end to end."""

    @pytest.mark.parametrize("name", ["Bro217", "ExactMatch"])
    def test_workload_reports_match_engine(self, name):
        instance = generate(name, scale=0.0005, seed=1)
        machine = to_rate(instance.automaton, 4)
        config = SunderConfig(rate_nibbles=4, report_bits=32)
        device = SunderDevice(config)
        device.configure(machine)
        vectors, limit = stream_for(machine, instance.input_bytes)
        result = device.run(vectors, position_limit=limit)
        want = BitsetEngine(machine).run(
            vectors, position_limit=limit
        ).event_keys()
        assert result.reports().event_keys() == want


class TestComposedExtensions:
    """Hot/cold splitting composed with the transformation + device."""

    def test_split_automaton_runs_on_device(self):
        from repro.extensions import split_hot_cold
        ruleset = compile_ruleset([("abcdefgh", "deep"), ("ab", "shallow")])
        sample = list(b"ababab abc ab")
        split = split_hot_cold(ruleset, sample, activity_coverage=1.0)
        machine = to_rate(split.hot_automaton, 2)
        device = SunderDevice(SunderConfig(rate_nibbles=2, report_bits=16))
        device.configure(machine)
        data = b"xx ab abcde xx"
        vectors, limit = stream_for(machine, data)
        result = device.run(vectors, position_limit=limit)
        want = BitsetEngine(machine).run(
            vectors, position_limit=limit
        ).event_keys()
        assert result.reports().event_keys() == want
        codes = {str(code) for _, code in want}
        assert "shallow" in codes  # original hot report survives


class TestFormatsThroughPipeline:
    """MNRL roundtrip composes with striding and execution."""

    def test_mnrl_persisted_strided_machine(self, tmp_path):
        from repro.automata import mnrl
        ruleset = compile_ruleset([("cafe", "C"), ("f00d", "F")])
        machine = to_rate(ruleset, 4)
        path = tmp_path / "machine.mnrl"
        mnrl.dump(machine, str(path))
        reloaded = mnrl.load(str(path))

        data = b"cafe f00d cafe"
        vectors, limit = stream_for(machine, data)
        want = BitsetEngine(machine).run(vectors, position_limit=limit)
        got = BitsetEngine(reloaded).run(vectors, position_limit=limit)
        assert want.event_keys() == got.event_keys()
