"""Crossbar and global-switch tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CrossbarSwitch, GlobalSwitch
from repro.errors import ArchitectureError


class TestCrossbar:
    def test_single_edge_propagation(self):
        switch = CrossbarSwitch(8)
        switch.program_edge(2, 5)
        active = np.zeros(8, dtype=bool)
        active[2] = True
        enabled = switch.propagate(active)
        assert list(np.flatnonzero(enabled)) == [5]

    def test_or_functionality_multiple_parents(self):
        switch = CrossbarSwitch(8)
        switch.program_edge(0, 4)
        switch.program_edge(1, 4)
        for parents in ([0], [1], [0, 1]):
            active = np.zeros(8, dtype=bool)
            active[parents] = True
            assert switch.propagate(active)[4]

    def test_no_active_states_enables_nothing(self):
        switch = CrossbarSwitch(8)
        switch.program_edge(0, 1)
        assert not switch.propagate(np.zeros(8, dtype=bool)).any()

    def test_self_loop(self):
        switch = CrossbarSwitch(4)
        switch.program_edge(3, 3)
        active = np.zeros(4, dtype=bool)
        active[3] = True
        assert switch.propagate(active)[3]

    def test_unprogram_edge(self):
        switch = CrossbarSwitch(4)
        switch.program_edge(0, 1)
        switch.program_edge(0, 1, connected=False)
        active = np.zeros(4, dtype=bool)
        active[0] = True
        assert not switch.propagate(active).any()

    def test_bounds_checked(self):
        switch = CrossbarSwitch(4)
        with pytest.raises(ArchitectureError):
            switch.program_edge(4, 0)
        with pytest.raises(ArchitectureError):
            switch.propagate(np.zeros(5, dtype=bool))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2 ** 31 - 1))
    def test_propagation_equals_boolean_matmul(self, seed):
        rng = np.random.RandomState(seed)
        size = 16
        adjacency = rng.rand(size, size) < 0.3
        active = rng.rand(size) < 0.4
        switch = CrossbarSwitch(size)
        switch.program_adjacency(adjacency)
        got = switch.propagate(active)
        want = active @ adjacency  # boolean mat-vec
        assert (got == want.astype(bool)).all()


class TestGlobalSwitch:
    def test_inter_pu_routing(self):
        switch = GlobalSwitch(num_pus=4, pu_size=8)
        switch.program_edge(0, 3, 2, 6)
        actives = [np.zeros(8, dtype=bool) for _ in range(4)]
        actives[0][3] = True
        remote = switch.propagate(actives)
        assert list(np.flatnonzero(remote[2])) == [6]
        assert not remote[0].any() and not remote[1].any()

    def test_intra_pu_edge_rejected(self):
        switch = GlobalSwitch(num_pus=2, pu_size=8)
        with pytest.raises(ArchitectureError):
            switch.program_edge(1, 0, 1, 3)

    def test_slot_math(self):
        switch = GlobalSwitch(num_pus=4, pu_size=256)
        assert switch.slot(0, 0) == 0
        assert switch.slot(3, 255) == 1023
        with pytest.raises(ArchitectureError):
            switch.slot(4, 0)

    def test_wrong_pu_count_rejected(self):
        switch = GlobalSwitch(num_pus=2, pu_size=4)
        with pytest.raises(ArchitectureError):
            switch.propagate([np.zeros(4, dtype=bool)])
