"""Placement tests: capacity rules and reporting-column discipline."""

import pytest

from repro.automata import Automaton, SymbolSet
from repro.core import SunderConfig, place
from repro.core.config import PUS_PER_CLUSTER
from repro.errors import ArchitectureError, CapacityError
from repro.regex import compile_ruleset
from repro.transform import to_rate


def _nibble_chain(name, length, report_last=True):
    automaton = Automaton(name=name, bits=4, arity=1, start_period=2)
    previous = None
    for index in range(length):
        state_id = "%s%d" % (name, index)
        automaton.new_state(
            state_id, SymbolSet.of(4, [index % 16]),
            start="all-input" if index == 0 else "none",
            report=report_last and index == length - 1,
            report_code=name if report_last and index == length - 1 else None,
        )
        if previous:
            automaton.add_transition(previous, state_id)
        previous = state_id
    return automaton


class TestPlacement:
    def test_report_states_get_reporting_columns(self):
        config = SunderConfig(rate_nibbles=1, report_bits=12)
        automaton = _nibble_chain("a", 10)
        placement = place(automaton, config)
        base = config.subarray_cols - config.report_bits
        for state in automaton:
            slot = placement.slot_of(state.id)
            if state.report:
                assert slot.column >= base
            else:
                assert slot.column < base

    def test_all_states_placed_uniquely(self, small_ruleset):
        strided = to_rate(small_ruleset, 4)
        config = SunderConfig(rate_nibbles=4)
        placement = place(strided, config)
        slots = [
            (s.cluster, s.pu, s.column) for s in placement.slots.values()
        ]
        assert len(slots) == len(set(slots)) == len(strided)

    def test_arity_mismatch_rejected(self, small_ruleset):
        config = SunderConfig(rate_nibbles=4)
        with pytest.raises(ArchitectureError):
            place(to_rate(small_ruleset, 2), config)

    def test_component_spanning_multiple_pus(self):
        config = SunderConfig(rate_nibbles=1, report_bits=12)
        automaton = _nibble_chain("big", 400)
        placement = place(automaton, config)
        assert len(placement.pus_used()) >= 2
        assert placement.clusters_used == 1

    def test_component_too_big_for_cluster_rejected(self):
        config = SunderConfig(rate_nibbles=1, report_bits=12)
        limit = PUS_PER_CLUSTER * (config.subarray_cols - config.report_bits)
        # limit+2 states = limit+1 normal states (one is the reporter).
        automaton = _nibble_chain("huge", limit + 2)
        with pytest.raises(CapacityError):
            place(automaton, config)

    def test_report_column_budget_enforced(self):
        config = SunderConfig(rate_nibbles=1, report_bits=2)
        # One component with more reporting states than the cluster holds.
        automaton = Automaton(bits=4, arity=1, start_period=2)
        automaton.new_state("hub", SymbolSet.full(4), start="all-input")
        for index in range(PUS_PER_CLUSTER * 2 + 1):
            state_id = "r%d" % index
            automaton.new_state(state_id, SymbolSet.full(4), report=True,
                                report_code=state_id)
            automaton.add_transition("hub", state_id)
        with pytest.raises(CapacityError):
            place(automaton, config)

    def test_max_clusters_limit(self):
        config = SunderConfig(rate_nibbles=1, report_bits=12)
        chains = [_nibble_chain("c%d" % i, 300) for i in range(8)]
        from repro.automata import union
        machine = union(chains, bits=4)
        machine.start_period = 2
        with pytest.raises(CapacityError):
            place(machine, config, max_clusters=1)

    def test_summary(self):
        config = SunderConfig(rate_nibbles=1)
        placement = place(_nibble_chain("a", 5), config)
        summary = placement.summary()
        assert summary["states"] == 5
        assert summary["clusters"] == 1

    def test_unplaced_state_lookup_fails(self):
        config = SunderConfig(rate_nibbles=1)
        placement = place(_nibble_chain("a", 3), config)
        with pytest.raises(ArchitectureError):
            placement.slot_of("ghost")
