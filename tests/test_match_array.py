"""Match-array tests: one-hot complement storage and multi-row matching."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import Ste, SymbolSet
from repro.core import MatchArray, SramSubarray, SunderConfig
from repro.core.match_array import match_vector_reference
from repro.errors import ArchitectureError, CapacityError


def _states(rng, count, rate):
    states = []
    for index in range(count):
        symbols = tuple(
            SymbolSet.of(4, rng.sample(range(16), rng.randint(1, 16)))
            for _ in range(rate)
        )
        states.append(Ste("q%d" % index, symbols))
    return states


@pytest.mark.parametrize("rate", [1, 2, 4])
class TestMatching:
    def test_matches_reference_oracle(self, rate):
        rng = random.Random(rate)
        subarray = SramSubarray(256, 256)
        array = MatchArray(subarray, rate)
        states = _states(rng, 40, rate)
        for column, state in enumerate(states):
            array.configure_state(column, state.symbols)
        for _ in range(50):
            vector = tuple(rng.randrange(16) for _ in range(rate))
            got = array.match(vector)[:40]
            want = match_vector_reference(states, vector)
            assert (got == want).all(), vector

    def test_unconfigured_columns_never_match(self, rate):
        array = MatchArray(SramSubarray(256, 256), rate)
        vector = tuple(0 for _ in range(rate))
        assert not array.match(vector).any()

    def test_row_layout(self, rate):
        array = MatchArray(SramSubarray(256, 256), rate)
        assert array.matching_rows == 16 * rate
        assert array.row_of(rate - 1, 15) == 16 * rate - 1


class TestConfiguration:
    def test_arity_mismatch_rejected(self):
        array = MatchArray(SramSubarray(256, 256), 2)
        with pytest.raises(ArchitectureError):
            array.configure_state(0, (SymbolSet.full(4),))

    def test_byte_symbols_rejected(self):
        array = MatchArray(SramSubarray(256, 256), 1)
        with pytest.raises(ArchitectureError):
            array.configure_state(0, (SymbolSet.full(8),))

    def test_column_bounds(self):
        array = MatchArray(SramSubarray(256, 256), 1)
        with pytest.raises(CapacityError):
            array.configure_state(256, (SymbolSet.full(4),))

    def test_clear_column(self):
        array = MatchArray(SramSubarray(256, 256), 1)
        array.configure_state(5, (SymbolSet.full(4),))
        assert array.match((3,))[5]
        array.clear_column(5)
        assert not array.match((3,))[5]

    def test_reconfigure_overwrites(self):
        array = MatchArray(SramSubarray(256, 256), 1)
        array.configure_state(0, (SymbolSet.of(4, [1]),))
        array.configure_state(0, (SymbolSet.of(4, [2]),))
        assert not array.match((1,))[0]
        assert array.match((2,))[0]

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 0xFFFF), min_size=1, max_size=8),
           st.integers(0, 15))
    def test_single_nibble_property(self, masks, value):
        array = MatchArray(SramSubarray(256, 256), 1)
        sets = [SymbolSet(4, mask) for mask in masks]
        for column, sset in enumerate(sets):
            array.configure_state(column, (sset,))
        result = array.match((value,))
        for column, sset in enumerate(sets):
            assert result[column] == (value in sset)
