"""Tests for the repro.obs telemetry subsystem.

Covers registry semantics (labels, histogram buckets, double
registration), span nesting and exception safety, both exposition
formats, the collector switchboard, and regression tests that the
simulator hooks emit the documented core metrics.
"""

import json
import threading

import pytest

from repro import obs
from repro.errors import ObservabilityError


@pytest.fixture(autouse=True)
def _detached():
    """Every test starts and ends with no collector attached."""
    obs.detach()
    yield
    obs.detach()


def fresh():
    return obs.MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self):
        counter = fresh().counter("c_total", "help")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_inc_rejected(self):
        counter = fresh().counter("c_total")
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_label_children_are_distinct_and_cached(self):
        counter = fresh().counter("c_total", "help", ("engine",))
        counter.labels(engine="bitset").inc(2)
        counter.labels(engine="naive").inc(3)
        assert counter.labels(engine="bitset").value == 2
        assert counter.labels(engine="naive").value == 3
        assert counter.labels(engine="bitset") is counter.labels(engine="bitset")

    def test_wrong_labels_rejected(self):
        counter = fresh().counter("c_total", "help", ("engine",))
        with pytest.raises(ObservabilityError):
            counter.labels(wrong="x")
        with pytest.raises(ObservabilityError):
            counter.labels()
        unlabeled = fresh().counter("plain_total")
        with pytest.raises(ObservabilityError):
            unlabeled.labels(engine="x")

    def test_bad_metric_name_rejected(self):
        with pytest.raises(ObservabilityError):
            fresh().counter("0bad")
        with pytest.raises(ObservabilityError):
            fresh().counter("has space")

    def test_bad_label_name_rejected(self):
        with pytest.raises(ObservabilityError):
            fresh().counter("ok_total", "", ("bad-label",))


class TestGauge:
    def test_set_inc_dec(self):
        gauge = fresh().gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7


class TestHistogram:
    def test_bucket_boundaries_are_inclusive_upper_bounds(self):
        histogram = fresh().histogram("h", buckets=(1, 5))
        for value in (0.5, 1.0, 3.0, 7.0):
            histogram.observe(value)
        # cumulative: <=1 -> 2, <=5 -> 3, +Inf -> 4
        assert histogram.bucket_counts() == [2, 3, 4]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(11.5)

    def test_buckets_must_increase(self):
        with pytest.raises(ObservabilityError):
            fresh().histogram("h", buckets=(1, 1))
        with pytest.raises(ObservabilityError):
            fresh().histogram("h", buckets=())

    def test_labeled_histogram_children_share_buckets(self):
        histogram = fresh().histogram("h", "help", ("stage",), buckets=(2,))
        histogram.labels(stage="a").observe(1)
        histogram.labels(stage="b").observe(3)
        assert histogram.labels(stage="a").bucket_counts() == [1, 1]
        assert histogram.labels(stage="b").bucket_counts() == [0, 1]


class TestRegistry:
    def test_double_registration_rejected(self):
        registry = fresh()
        registry.counter("dup_total")
        with pytest.raises(ObservabilityError):
            registry.counter("dup_total")
        with pytest.raises(ObservabilityError):
            registry.gauge("dup_total")

    def test_get_contains_unregister(self):
        registry = fresh()
        counter = registry.counter("c_total")
        assert registry.get("c_total") is counter
        assert "c_total" in registry
        assert len(registry) == 1
        registry.unregister("c_total")
        assert registry.get("c_total") is None

    def test_default_registry_is_process_global(self):
        assert obs.REGISTRY is obs.metrics.REGISTRY
        assert obs.attach() is obs.REGISTRY


class TestExposition:
    def build(self):
        registry = fresh()
        registry.counter("c_total", "a counter", ("kind",)) \
            .labels(kind="x").inc(3)
        registry.gauge("g", "a gauge").set(1.5)
        registry.histogram("h", "a histogram", buckets=(1.0,)).observe(0.5)
        return registry

    def test_text_format(self):
        text = self.build().render_text()
        assert "# HELP c_total a counter" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{kind="x"} 3' in text
        assert "g 1.5" in text
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_sum 0.5" in text
        assert "h_count 1" in text

    def test_label_value_escaping(self):
        registry = fresh()
        registry.counter("c_total", "", ("path",)) \
            .labels(path='a"b\\c\nd').inc()
        text = registry.render_text()
        assert r'path="a\"b\\c\nd"' in text

    def test_json_snapshot_round_trips_and_validates(self):
        registry = self.build()
        snapshot = json.loads(registry.render_json())
        assert obs.validate_snapshot(snapshot) is snapshot
        by_name = {m["name"]: m for m in snapshot["metrics"]}
        assert by_name["c_total"]["samples"][0] == {
            "labels": {"kind": "x"}, "value": 3}
        histogram = by_name["h"]["samples"][0]
        assert histogram["buckets"][-1] == {"le": "+Inf", "count": 1}

    def test_schema_rejects_drift(self):
        registry = self.build()
        good = registry.snapshot()
        bad = json.loads(json.dumps(good))
        bad["metrics"][0]["type"] = "summary"
        with pytest.raises(ObservabilityError):
            obs.validate_snapshot(bad)
        bad = json.loads(json.dumps(good))
        bad["version"] = 2
        with pytest.raises(ObservabilityError):
            obs.validate_snapshot(bad)
        bad = json.loads(json.dumps(good))
        for metric in bad["metrics"]:
            if metric["type"] == "histogram":
                metric["samples"][0]["buckets"][-1]["le"] = 99.0
        with pytest.raises(ObservabilityError):
            obs.validate_snapshot(bad)


class TestSpans:
    def test_nesting_depths_and_parents(self):
        trace = obs.TraceCollector()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
            with trace.span("sibling"):
                pass
        spans = {span.name: span for span in trace.finished()}
        assert spans["outer"].depth == 0
        assert spans["inner"].depth == 1
        assert spans["sibling"].depth == 1
        assert spans["inner"].parent == spans["outer"].index
        assert spans["sibling"].parent == spans["outer"].index
        assert spans["outer"].duration >= spans["inner"].duration

    def test_exception_safety(self):
        trace = obs.TraceCollector()
        with pytest.raises(RuntimeError):
            with trace.span("outer"):
                with trace.span("failing"):
                    raise RuntimeError("boom")
        spans = {span.name: span for span in trace.finished()}
        assert set(spans) == {"outer", "failing"}
        assert "boom" in spans["failing"].attrs["error"]
        # the stack unwound fully: a new span starts at depth 0 again
        with trace.span("after"):
            pass
        assert {s.name: s.depth for s in trace.finished()}["after"] == 0

    def test_thread_local_stacks(self):
        trace = obs.TraceCollector()
        seen = []

        def worker():
            with trace.span("worker"):
                seen.append(True)

        with trace.span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        spans = {span.name: span for span in trace.finished()}
        assert spans["worker"].depth == 0  # not nested under main's stack
        assert spans["worker"].thread_id != spans["main"].thread_id

    def test_jsonl_export(self):
        trace = obs.TraceCollector()
        with trace.span("a", key="value"):
            pass
        lines = trace.to_jsonl().strip().splitlines()
        record = json.loads(lines[0])
        assert record["name"] == "a"
        assert record["attrs"] == {"key": "value"}
        assert record["duration"] >= 0

    def test_chrome_trace_format(self, tmp_path):
        trace = obs.TraceCollector()
        with trace.span("outer"):
            with trace.span("inner", detail=1):
                pass
        doc = trace.chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert isinstance(event["pid"], int)
        path = tmp_path / "trace.json"
        trace.write_chrome_trace(str(path))
        assert json.loads(path.read_text())["traceEvents"]


class TestCollectorSwitchboard:
    def test_trace_span_is_noop_when_detached(self):
        before = obs.OBS.active
        with obs.trace_span("anything", x=1) as span:
            assert span is obs.spans.NULL_SPAN
            span.set_attr(y=2)  # no-op, must not raise
        assert obs.OBS.active == before is False

    def test_attach_detach_cycle(self):
        registry = fresh()
        trace = obs.TraceCollector()
        obs.attach(registry=registry, trace=trace)
        assert obs.OBS.active
        assert obs.OBS.registry is registry
        with obs.trace_span("live"):
            pass
        obs.detach()
        assert not obs.OBS.active
        assert [span.name for span in trace.finished()] == ["live"]

    def test_double_attach_rejected(self):
        obs.attach(registry=fresh())
        with pytest.raises(ObservabilityError):
            obs.attach(registry=fresh())

    def test_collecting_context_manager_detaches_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.collecting(registry=fresh()):
                assert obs.OBS.active
                raise RuntimeError("boom")
        assert not obs.OBS.active

    def test_instruments_cached_per_registry(self):
        registry = fresh()
        assert obs.instruments_for(registry) is obs.instruments_for(registry)


class TestEngineHooks:
    def test_bitset_run_emits_core_metrics(self):
        from repro.regex import compile_ruleset
        from repro.sim import BitsetEngine

        machine = compile_ruleset(["ab"])
        engine = BitsetEngine(machine)
        registry = fresh()
        with obs.collecting(registry=registry):
            recorder = engine.run(list(b"abab"))
        labels = {"engine": "bitset"}

        def value(name):
            return registry.get(name).labels(**labels).value

        assert value("repro_engine_runs_total") == 1
        assert value("repro_engine_cycles_total") == 4
        assert value("repro_engine_reports_total") == recorder.total_reports == 2
        histogram = registry.get("repro_engine_active_states").labels(**labels)
        assert histogram.count == 4  # one observation per cycle
        seconds = registry.get("repro_engine_run_seconds").labels(**labels)
        assert seconds.count == 1

    def test_unattached_run_records_nothing(self):
        from repro.regex import compile_ruleset
        from repro.sim import BitsetEngine

        engine = BitsetEngine(compile_ruleset(["ab"]))
        recorder = engine.run(list(b"abab"))
        assert recorder.total_reports == 2
        # the default registry holds no engine sample for this run
        assert not obs.OBS.active


class TestDeviceHooks:
    def run_device(self, registry, trace=None):
        from repro.core import SunderConfig, SunderDevice
        from repro.regex import compile_ruleset
        from repro.sim import stream_for
        from repro.transform import to_rate

        machine = to_rate(compile_ruleset(["needle"]), 2)
        device = SunderDevice(SunderConfig(rate_nibbles=2, report_bits=16))
        with obs.collecting(registry=registry, trace=trace):
            device.configure(machine)
            vectors, limit = stream_for(machine, b"xx needle xx")
            result = device.run(vectors, position_limit=limit)
            result.reports()
        return device, result

    def test_run_emits_documented_core_metrics(self):
        registry = fresh()
        device, result = self.run_device(registry)
        assert registry.get("repro_device_reconfigurations_total").value == 1
        assert registry.get("repro_device_cycles_total").value == result.cycles
        assert (registry.get("repro_device_stall_cycles_total").value
                == result.stall_cycles)
        states = registry.get("repro_device_configured_states") \
            .labels(cluster="0").value
        assert states == len(device.automaton)
        utilization = registry.get("repro_device_cluster_utilization") \
            .labels(cluster="0").value
        assert 0 < utilization <= 1
        assert registry.get("repro_device_run_seconds").count == 1
        # flush/drain counters exist even when this tiny run never fills
        assert registry.get("repro_device_flushes_total").value >= 0
        assert registry.get("repro_device_fifo_drained_entries_total") \
            .value >= 0

    def test_run_emits_configure_run_drain_spans(self):
        trace = obs.TraceCollector()
        self.run_device(fresh(), trace=trace)
        names = [span.name for span in trace.finished()]
        assert "device.configure" in names
        assert "device.run" in names
        assert "device.report_drain" in names


class TestTransformHooks:
    def test_to_rate_records_both_stages(self):
        from repro.regex import compile_ruleset
        from repro.transform import to_rate

        registry = fresh()
        with obs.collecting(registry=registry):
            to_rate(compile_ruleset(["abc"]), 4)
        runs = registry.get("repro_transform_runs_total")
        assert runs.labels(stage="nibble").value == 1
        assert runs.labels(stage="stride").value == 1
        ratio = registry.get("repro_transform_state_ratio")
        assert ratio.labels(stage="nibble").count == 1
        seconds = registry.get("repro_transform_stage_seconds")
        assert seconds.labels(stage="stride").count == 1


class TestExperimentHooks:
    def test_entry_point_records_span_and_metrics(self, capsys):
        from repro.experiments import table5

        registry = fresh()
        trace = obs.TraceCollector()
        with obs.collecting(registry=registry, trace=trace):
            table5.main()
        capsys.readouterr()
        runs = registry.get("repro_experiment_runs_total")
        assert runs.labels(experiment="table5").value == 1
        seconds = registry.get("repro_experiment_seconds")
        assert seconds.labels(experiment="table5").count == 1
        assert "experiment.table5" in [s.name for s in trace.finished()]

    def test_scorecard_json_embeds_snapshot(self):
        from repro.experiments.scorecard import Claim, to_json

        claims = [Claim("x", 1.0, 1.0, 0.9, 1.1)]
        registry = fresh()
        registry.counter("c_total").inc()
        with obs.collecting(registry=registry):
            payload = json.loads(to_json(claims))
        assert payload["metrics"]["version"] == 1
        names = [m["name"] for m in payload["metrics"]["metrics"]]
        assert "c_total" in names
        # detached: metrics slot stays empty
        assert json.loads(to_json(claims))["metrics"] is None
