"""Tests for graph operations, especially language-preserving merging."""

import random

import pytest

from repro.automata import (
    Automaton,
    SymbolSet,
    connected_components,
    degree_statistics,
    minimize,
    single_pattern,
    union,
)
from repro.automata.ops import longest_simple_path_bound, reachable_from
from repro.sim import BitsetEngine
from conftest import random_automaton


class TestComponents:
    def test_two_patterns_two_components(self):
        machine = union([single_pattern("a", b"xy"), single_pattern("b", b"pq")])
        components = connected_components(machine)
        assert len(components) == 2
        assert sorted(len(c) for c in components) == [2, 2]

    def test_single_component_when_connected(self):
        machine = single_pattern("a", b"abcd")
        assert len(connected_components(machine)) == 1

    def test_largest_component_first(self):
        machine = union([single_pattern("a", b"ab"), single_pattern("b", b"pqrst")])
        components = connected_components(machine)
        assert len(components[0]) == 5


class TestDegreeStatistics:
    def test_chain_degrees(self):
        machine = single_pattern("a", b"abc")
        stats = degree_statistics(machine)
        assert stats["max_fan_out"] == 1
        assert stats["max_fan_in"] == 1

    def test_empty_automaton(self):
        stats = degree_statistics(Automaton())
        assert stats["max_fan_in"] == 0


class TestMinimize:
    def test_merges_identical_branches(self):
        # Two identical chains from the same start should collapse.
        automaton = Automaton(bits=8)
        automaton.new_state("s", SymbolSet.of(8, [1]), start="all-input")
        for branch in ("x", "y"):
            automaton.new_state(branch + "1", SymbolSet.of(8, [2]))
            automaton.new_state(branch + "2", SymbolSet.of(8, [3]),
                                report=True, report_code="r")
            automaton.add_transition("s", branch + "1")
            automaton.add_transition(branch + "1", branch + "2")
        removed = minimize(automaton)
        assert removed == 2
        assert len(automaton) == 3

    def test_does_not_merge_different_reports(self):
        automaton = Automaton(bits=8)
        automaton.new_state("s", SymbolSet.of(8, [1]), start="all-input")
        automaton.new_state("a", SymbolSet.of(8, [2]), report=True,
                            report_code="ra")
        automaton.new_state("b", SymbolSet.of(8, [2]), report=True,
                            report_code="rb")
        automaton.add_transition("s", "a")
        automaton.add_transition("s", "b")
        assert minimize(automaton) == 0

    @pytest.mark.parametrize("seed", range(12))
    def test_minimize_preserves_language(self, seed):
        rng = random.Random(seed)
        automaton = random_automaton(rng, n_states=10, bits=4,
                                     edge_density=0.3)
        if len(automaton) == 0:
            return
        reference = automaton.copy()
        minimize(automaton)
        automaton.validate()
        for trial in range(10):
            data = [rng.randrange(16) for _ in range(rng.randint(0, 30))]
            got = BitsetEngine(automaton).run(data).event_keys()
            want = BitsetEngine(reference).run(data).event_keys()
            # Keys are (position, report_code): state ids may merge, the
            # observable reports may not change.
            assert got == want, (seed, trial, data)


class TestReachability:
    def test_reachable_from(self):
        machine = single_pattern("a", b"abc")
        assert reachable_from(machine, ["a_0"]) == {"a_0", "a_1", "a_2"}
        assert reachable_from(machine, ["a_2"]) == {"a_2"}

    def test_depth_bound(self):
        machine = single_pattern("a", b"abcde")
        assert longest_simple_path_bound(machine) == 5


class TestUnion:
    def test_union_preserves_both_languages(self):
        a = single_pattern("a", b"xy", report_code="A")
        b = single_pattern("b", b"zz", report_code="B")
        machine = union([a, b])
        recorder = BitsetEngine(machine).run(list(b"xyzz"))
        assert {code for _, code in recorder.event_keys()} == {"A", "B"}

    def test_union_requires_input(self):
        with pytest.raises(ValueError):
            union([])
