"""Tests for graph operations, especially language-preserving merging."""

import random

import pytest

from repro.automata import (
    Automaton,
    SymbolSet,
    connected_components,
    degree_statistics,
    minimize,
    single_pattern,
    union,
)
from repro.automata.ops import longest_simple_path_bound, reachable_from
from repro.sim import BitsetEngine
from conftest import random_automaton


class TestComponents:
    def test_two_patterns_two_components(self):
        machine = union([single_pattern("a", b"xy"), single_pattern("b", b"pq")])
        components = connected_components(machine)
        assert len(components) == 2
        assert sorted(len(c) for c in components) == [2, 2]

    def test_single_component_when_connected(self):
        machine = single_pattern("a", b"abcd")
        assert len(connected_components(machine)) == 1

    def test_largest_component_first(self):
        machine = union([single_pattern("a", b"ab"), single_pattern("b", b"pqrst")])
        components = connected_components(machine)
        assert len(components[0]) == 5


class TestDegreeStatistics:
    def test_chain_degrees(self):
        machine = single_pattern("a", b"abc")
        stats = degree_statistics(machine)
        assert stats["max_fan_out"] == 1
        assert stats["max_fan_in"] == 1

    def test_empty_automaton(self):
        stats = degree_statistics(Automaton())
        assert stats["max_fan_in"] == 0


class TestMinimize:
    def test_merges_identical_branches(self):
        # Two identical chains from the same start should collapse.
        automaton = Automaton(bits=8)
        automaton.new_state("s", SymbolSet.of(8, [1]), start="all-input")
        for branch in ("x", "y"):
            automaton.new_state(branch + "1", SymbolSet.of(8, [2]))
            automaton.new_state(branch + "2", SymbolSet.of(8, [3]),
                                report=True, report_code="r")
            automaton.add_transition("s", branch + "1")
            automaton.add_transition(branch + "1", branch + "2")
        removed = minimize(automaton)
        assert removed == 2
        assert len(automaton) == 3

    def test_does_not_merge_different_reports(self):
        automaton = Automaton(bits=8)
        automaton.new_state("s", SymbolSet.of(8, [1]), start="all-input")
        automaton.new_state("a", SymbolSet.of(8, [2]), report=True,
                            report_code="ra")
        automaton.new_state("b", SymbolSet.of(8, [2]), report=True,
                            report_code="rb")
        automaton.add_transition("s", "a")
        automaton.add_transition("s", "b")
        assert minimize(automaton) == 0

    @pytest.mark.parametrize("seed", range(12))
    def test_minimize_preserves_language(self, seed):
        rng = random.Random(seed)
        automaton = random_automaton(rng, n_states=10, bits=4,
                                     edge_density=0.3)
        if len(automaton) == 0:
            return
        reference = automaton.copy()
        minimize(automaton)
        automaton.validate()
        for trial in range(10):
            data = [rng.randrange(16) for _ in range(rng.randint(0, 30))]
            got = BitsetEngine(automaton).run(data).event_keys()
            want = BitsetEngine(reference).run(data).event_keys()
            # Keys are (position, report_code): state ids may merge, the
            # observable reports may not change.
            assert got == want, (seed, trial, data)


class TestPartitionRefinement:
    """The refinement minimizer must subsume the legacy round-based one."""

    def _dup_union(self, copies, length):
        return union([single_pattern("dup", bytes([65] * length))
                      for _ in range(copies)], name="dup")

    def test_collapses_long_duplicate_chains_fully(self):
        # 40 duplicate 64-state chains need 64 legacy rounds — beyond the
        # 32-round cap — but one refinement pass collapses them all.
        from repro.automata.ops import minimize_legacy
        machine = self._dup_union(40, 64)
        legacy = self._dup_union(40, 64)
        minimize(machine)
        minimize_legacy(legacy)
        assert len(machine) == 64
        assert len(legacy) > len(machine)

    def test_merges_through_cycles(self):
        # Two identical self-looping reporters: exact-successor matching
        # sees different ids through the loops, refinement merges them.
        automaton = Automaton(bits=8)
        automaton.new_state("s", SymbolSet.of(8, [1]), start="all-input")
        for name in ("a", "b"):
            automaton.new_state(name, SymbolSet.of(8, [2]),
                                report=True, report_code="r")
            automaton.add_transition("s", name)
            automaton.add_transition(name, name)
        minimize(automaton)
        assert len(automaton) == 2

    @pytest.mark.parametrize("seed", range(8))
    def test_never_merges_less_than_legacy(self, seed):
        from repro.automata.ops import minimize_legacy
        rng = random.Random(seed)
        automaton = random_automaton(rng, n_states=12, bits=4,
                                     edge_density=0.35)
        legacy = automaton.copy()
        removed = minimize(automaton)
        removed_legacy = minimize_legacy(legacy)
        assert removed >= removed_legacy

    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_with_legacy_language(self, seed):
        from repro.automata.ops import minimize_legacy
        rng = random.Random(1000 + seed)
        automaton = random_automaton(rng, n_states=10, bits=4,
                                     edge_density=0.3)
        legacy = automaton.copy()
        minimize(automaton)
        minimize_legacy(legacy)
        for trial in range(8):
            data = [rng.randrange(16) for _ in range(rng.randint(0, 25))]
            got = BitsetEngine(automaton).run(data).event_keys()
            want = BitsetEngine(legacy).run(data).event_keys()
            assert got == want, (seed, trial, data)

    def test_keeps_distinct_rules_separate(self):
        # Rules with distinct report codes must not be welded together.
        machine = union([single_pattern("a", b"xy", report_code="a"),
                         single_pattern("b", b"xy", report_code="b")])
        minimize(machine)
        assert len(connected_components(machine)) == 2


class TestReachability:
    def test_reachable_from(self):
        machine = single_pattern("a", b"abc")
        assert reachable_from(machine, ["a_0"]) == {"a_0", "a_1", "a_2"}
        assert reachable_from(machine, ["a_2"]) == {"a_2"}

    def test_depth_bound(self):
        machine = single_pattern("a", b"abcde")
        assert longest_simple_path_bound(machine) == 5


class TestUnion:
    def test_union_preserves_both_languages(self):
        a = single_pattern("a", b"xy", report_code="A")
        b = single_pattern("b", b"zz", report_code="B")
        machine = union([a, b])
        recorder = BitsetEngine(machine).run(list(b"xyzz"))
        assert {code for _, code in recorder.event_keys()} == {"A", "B"}

    def test_union_requires_input(self):
        with pytest.raises(ValueError):
            union([])
