"""ParallelRunner: ordering, fallback, determinism, and CLI plumbing."""

import pytest

from repro.errors import SimulationError
from repro.sim.parallel import ParallelRunner, default_workers, parallel_map
from repro import obs


def _square(job):
    return job * job


class TestRunner:
    def test_serial_map_preserves_order(self):
        assert ParallelRunner(1).map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_process_map_preserves_order(self):
        jobs = list(range(20))
        assert ParallelRunner(2).map(_square, jobs) == [j * j for j in jobs]

    def test_zero_means_all_cores(self):
        runner = ParallelRunner(0)
        assert runner.workers == default_workers() >= 1
        assert runner.map(_square, [2, 4]) == [4, 16]

    def test_unpicklable_function_falls_back_to_serial(self):
        captured = []

        def closure(job):  # local: unpicklable by the pool
            captured.append(job)
            return -job

        assert ParallelRunner(4).map(closure, [1, 2, 3]) == [-1, -2, -3]
        assert captured == [1, 2, 3]

    def test_job_errors_propagate(self):
        with pytest.raises(ZeroDivisionError):
            ParallelRunner(1).map(lambda job: 1 // job, [1, 0])

    def test_empty_jobs(self):
        assert ParallelRunner(4).map(_square, []) == []

    def test_negative_workers_rejected(self):
        with pytest.raises(SimulationError):
            ParallelRunner(-1)

    def test_parallel_map_convenience(self):
        assert parallel_map(_square, [5], workers=1) == [25]

    def test_metrics_recorded_when_collecting(self):
        registry = obs.MetricsRegistry()
        with obs.collecting(registry=registry):
            ParallelRunner(1).map(_square, [1, 2, 3])
        snapshot = registry.snapshot()
        by_name = {metric["name"]: metric for metric in snapshot["metrics"]}
        jobs = by_name["repro_parallel_jobs_total"]["samples"]
        assert any(sample["labels"] == {"mode": "serial"}
                   and sample["value"] == 3 for sample in jobs)
        workers = by_name["repro_parallel_workers"]["samples"]
        assert workers and workers[0]["value"] == 1


class TestExperimentDeterminism:
    """Fanned-out experiment drivers must match their serial output."""

    NAMES = ("Bro217", "Levenshtein")

    def test_table1_rows_identical_at_any_worker_count(self):
        from repro.experiments import table1
        serial = table1.run(scale=0.002, seed=0, names=self.NAMES, workers=1)
        parallel = table1.run(scale=0.002, seed=0, names=self.NAMES, workers=2)
        assert serial == parallel
        assert table1.render(serial) == table1.render(parallel)

    def test_figure10_rows_identical_at_any_worker_count(self):
        from repro.experiments import figure10
        serial = figure10.run(workers=1)
        parallel = figure10.run(workers=2)
        assert serial == parallel
        assert figure10.render(serial) == figure10.render(parallel)

    def test_figure9_rows_identical_at_any_worker_count(self):
        from repro.experiments import figure9
        assert figure9.run(workers=1) == figure9.run(workers=2)


class TestCli:
    def test_experiment_accepts_workers_flag(self, capsys):
        from repro.cli import main
        assert main(["experiment", "figure10", "--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert main(["experiment", "figure10"]) == 0
        assert capsys.readouterr().out == parallel_out
