"""Analytic reporting-performance model tests."""

import pytest

from repro.core import (
    ReportingPerfModel,
    SunderConfig,
    pu_fill_cycles_from_events,
    sensitivity_slowdown,
)
from repro.errors import ArchitectureError
from repro.sim.reports import ReportEvent


def _config(fifo=False, **kwargs):
    return SunderConfig(rate_nibbles=4, report_bits=12, metadata_bits=20,
                        fifo=fifo, **kwargs)


class TestReportingPerfModel:
    def test_no_fills_no_overhead(self):
        result = ReportingPerfModel(_config()).evaluate({}, 1000)
        assert result.slowdown == 1.0 and result.flushes == 0

    def test_below_capacity_never_flushes(self):
        config = _config()
        fills = {("c", 0): list(range(config.report_capacity))}
        result = ReportingPerfModel(config).evaluate(
            fills, config.report_capacity + 1
        )
        assert result.flushes == 0

    def test_overflow_flushes_once_per_capacity(self):
        config = _config()
        total = config.report_capacity * 3 + 1
        fills = {("c", 0): list(range(total))}
        result = ReportingPerfModel(config).evaluate(fills, total + 1)
        assert result.flushes == 3
        assert result.stall_cycles > 0
        assert result.slowdown > 1.0

    def test_fifo_drain_reduces_flushes(self):
        total = 40_000
        fills = {("c", 0): list(range(0, total, 2))}  # fill rate 0.5/cycle
        no_fifo = ReportingPerfModel(_config(fifo=False)).evaluate(fills, total)
        fifo = ReportingPerfModel(
            _config(fifo=True, fifo_drain_rows_per_cycle=0.25)
        ).evaluate(fills, total)
        assert no_fifo.flushes > 0
        assert fifo.flushes < no_fifo.flushes

    def test_fifo_fully_drains_slow_fills(self):
        fills = {("c", 0): list(range(0, 40_000, 10))}  # 0.1 fills/cycle
        result = ReportingPerfModel(
            _config(fifo=True, fifo_drain_rows_per_cycle=0.25)
        ).evaluate(fills, 40_000)
        assert result.flushes == 0

    def test_independent_pus_flush_independently(self):
        config = _config()
        total = config.report_capacity + 1
        fills = {
            ("c", 0): list(range(total)),
            ("c", 1): [0],
        }
        result = ReportingPerfModel(config).evaluate(fills, total + 1)
        assert result.flushes == 1

    def test_capacity_scale_shrinks_capacity(self):
        config = _config()
        fills = {("c", 0): list(range(100))}
        scaled = ReportingPerfModel(config).evaluate(
            fills, 200, capacity_scale=0.01
        )
        unscaled = ReportingPerfModel(config).evaluate(fills, 200)
        assert scaled.flushes > unscaled.flushes == 0

    def test_fill_beyond_stream_rejected(self):
        with pytest.raises(ArchitectureError):
            ReportingPerfModel(_config()).evaluate({("c", 0): [10]}, 10)

    def test_bad_scale_rejected(self):
        with pytest.raises(ArchitectureError):
            ReportingPerfModel(_config()).evaluate({}, 10, capacity_scale=0)


class TestFillExtraction:
    def test_groups_by_pu_and_dedups_cycles(self):
        class FakePlacement:
            def report_pu_of(self, state_id):
                return ("c0", 0) if state_id.startswith("a") else ("c0", 1)

        events = [
            ReportEvent(0, 0, "a1", "x"),
            ReportEvent(0, 0, "a2", "y"),   # same PU, same cycle -> one fill
            ReportEvent(4, 1, "b1", "z"),
        ]
        fills = pu_fill_cycles_from_events(events, FakePlacement())
        assert fills == {("c0", 0): [0], ("c0", 1): [1]}


class TestSensitivity:
    def test_paper_anchor_points(self):
        config = SunderConfig(report_bits=12)
        worst = sensitivity_slowdown(1.0, summarize=False, config=config)
        summarized = sensitivity_slowdown(1.0, summarize=True, config=config)
        assert 6.0 <= worst <= 8.0       # paper: 7x
        assert 1.2 <= summarized <= 1.6  # paper: 1.4x

    def test_low_rates_are_free(self):
        assert sensitivity_slowdown(0.05) == 1.0
        assert sensitivity_slowdown(0.0) == 1.0

    def test_monotone_in_rate(self):
        values = [sensitivity_slowdown(r / 10.0) for r in range(11)]
        assert values == sorted(values)

    def test_summarization_always_helps(self):
        for rate in (0.2, 0.5, 0.8, 1.0):
            assert (
                sensitivity_slowdown(rate, summarize=True)
                <= sensitivity_slowdown(rate, summarize=False)
            )

    def test_out_of_range_rejected(self):
        with pytest.raises(ArchitectureError):
            sensitivity_slowdown(1.5)
