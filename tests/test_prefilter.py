"""Differential suite for the two-stage literal prefilter.

The gate's contract is *bit-exactness*: a prefilter-gated run emits
exactly the reports of the ungated run — same events, same order — on
every path: gated windows, the cold short-circuit (no engine built),
and the unfilterable/cyclic bypass.  The suite pins this across regex
families x rates 1/2/4 x both fast kernels, plus the extraction
soundness property the whole design rests on: every report in an
ungated run ends at a byte the direct filter's scan surfaces.
"""

import random

import pytest

from conftest import random_automaton
from repro.errors import PrefilterError
from repro.prefilter import (Prefilter, build_prefilter, extract_literals,
                             gated_device_run, gated_simulation,
                             plan_windows, record_hotcold_savings)
from repro.core import SunderConfig, SunderDevice
from repro.regex import compile_ruleset
from repro.sim import BitsetEngine, stream_for
from repro.sim.reports import ReportRecorder
from repro.transform import to_rate

#: Regex families with extractable literals (every report path funnels
#: through a fixed byte string or a narrow class).
FILTERABLE_FAMILIES = {
    "exact": ["abc", "hello", "needle"],
    "classes": ["ab[0-9]", "[xy]z!"],
    "alternation": ["q(rs|tu)v", "(foo|bar)"],
    "bounded": ["ab{2}c", "z{3}"],
}
#: Families the extractor must refuse (unbounded tails / wide classes).
UNFILTERABLE_FAMILIES = {
    "dotstar": ["a.*b"],
    "wide_class": ["a.c"],
}

RATES = (1, 2, 4)
ALPHABET = b"abcdefghij norstuvxyz!0123"


def _streams(rules, rng, length=300):
    """Clean, match-bearing, and adversarial inputs for one family."""
    noise = bytes(rng.choice(b"KLMNOPQW") for _ in range(length))
    planted = bytearray(rng.choice(ALPHABET) for _ in range(length))
    for index, rule in enumerate(rules):
        seed = rule.strip("(").split("|")[0]
        literal = "".join(ch for ch in seed if ch.isalnum() or ch in "!")
        position = (index * 67) % (length - 12)
        planted[position:position + len(literal)] = literal.encode()
    edges = b"abc" + noise[:40] + b"helloabc" + b"q" * 20 + b"abcabcabc"
    return [noise, bytes(planted), edges]


def _engine_events(machine, data):
    vectors, limit = stream_for(machine, data)
    recorder = ReportRecorder(keep_events=True, position_limit=limit)
    BitsetEngine(machine).run(vectors, recorder)
    return recorder


@pytest.mark.parametrize("family", sorted(FILTERABLE_FAMILIES))
def test_gated_engine_bit_exact_across_rates(family, rng):
    rules = FILTERABLE_FAMILIES[family]
    source = compile_ruleset(rules)
    prefilter = build_prefilter(source)
    assert prefilter.filterable, prefilter.extraction.reason
    for data in _streams(rules, rng):
        baseline = _engine_events(source, data)
        recorder = ReportRecorder(keep_events=True)
        engine, gated = gated_simulation(source, data, recorder,
                                         prefilter=prefilter)
        assert gated
        assert recorder.events == baseline.events
        for rate in RATES:
            machine = to_rate(source, rate)
            expected = _engine_events(machine, data)
            _, limit = stream_for(machine, data)
            gated_rec = ReportRecorder(keep_events=True,
                                       position_limit=limit)
            gated_simulation(machine, data, gated_rec, source=source,
                             prefilter=prefilter)
            assert gated_rec.events == expected.events, (family, rate)


@pytest.mark.parametrize("family", sorted(FILTERABLE_FAMILIES))
@pytest.mark.parametrize("rate", RATES)
def test_gated_device_bit_exact(family, rate, rng):
    rules = FILTERABLE_FAMILIES[family]
    source = compile_ruleset(rules)
    prefilter = build_prefilter(source)
    machine = to_rate(source, rate)
    device = SunderDevice(SunderConfig(rate_nibbles=rate),
                          fidelity="packed")
    device.configure(machine)
    for data in _streams(rules, rng):
        vectors, limit = stream_for(machine, data)
        expected = device.run_batch([vectors], position_limit=limit)[0]
        recorder = gated_device_run(device, machine, data, source=source,
                                    prefilter=prefilter)
        assert recorder.events == expected.events, (family, rate)


@pytest.mark.parametrize("family", sorted(UNFILTERABLE_FAMILIES))
def test_unfilterable_families_bypass_bit_exact(family, rng):
    rules = UNFILTERABLE_FAMILIES[family]
    source = compile_ruleset(rules)
    prefilter = build_prefilter(source)
    assert not prefilter.filterable
    data = b"a" + bytes(rng.choice(ALPHABET) for _ in range(200)) + b"xyyyzb"
    baseline = _engine_events(source, data)
    recorder = ReportRecorder(keep_events=True)
    engine, gated = gated_simulation(source, data, recorder,
                                     prefilter=prefilter)
    assert not gated
    assert engine is not None
    assert recorder.events == baseline.events
    # The device path bypasses the same way.
    machine = to_rate(source, 4)
    device = SunderDevice(SunderConfig(rate_nibbles=4), fidelity="packed")
    device.configure(machine)
    vectors, limit = stream_for(machine, data)
    expected = device.run_batch([vectors], position_limit=limit)[0]
    gated_rec = gated_device_run(device, machine, data, source=source,
                                 prefilter=prefilter)
    assert gated_rec.events == expected.events


def test_cyclic_machine_bypasses_bit_exact(rng):
    """``xy+z`` is filterable (loop suffixes are covered up to the max
    literal length) but cyclic — no depth bound, so window planning
    refuses and the run bypasses the gate, still bit-exact."""
    source = compile_ruleset(["xy+z"])
    prefilter = build_prefilter(source)
    assert prefilter.filterable
    assert source.depth_bound() is None
    data = b"xyz " + bytes(rng.choice(ALPHABET) for _ in range(150)) \
        + b" xyyyyz"
    baseline = _engine_events(source, data)
    recorder = ReportRecorder(keep_events=True)
    engine, gated = gated_simulation(source, data, recorder,
                                     prefilter=prefilter)
    assert not gated
    assert recorder.events == baseline.events


def test_cold_gate_never_builds_the_engine():
    source = compile_ruleset(["needle", "hay[0-9]"])
    prefilter = build_prefilter(source)
    recorder = ReportRecorder(keep_events=True)
    engine, gated = gated_simulation(source, b"Q" * 500, recorder,
                                     prefilter=prefilter)
    assert gated
    assert engine is None
    assert recorder.events == []


def test_extraction_soundness_on_random_machines(rng):
    """Every ungated report ends at a byte the scan surfaces.

    This is the property the whole gate rests on: if extraction calls a
    machine filterable, a report at byte position t implies some
    extracted literal occurrence ends exactly at t, and the direct
    filter's verified scan finds it.
    """
    checked = 0
    for seed in range(40):
        machine_rng = random.Random(seed)
        machine = random_automaton(machine_rng, n_states=6,
                                   edge_density=0.2)
        if not machine or not machine.report_states():
            continue
        extraction = extract_literals(machine)
        if not extraction.filterable:
            continue
        prefilter = Prefilter(extraction)
        data = bytes(rng.randrange(256) for _ in range(300))
        ends = set(prefilter.scan(data).ends)
        baseline = _engine_events(machine, data)
        for event in baseline.events:
            assert event.position in ends, (seed, event)
        checked += 1
    assert checked >= 5  # the property must actually have been exercised


def test_plan_windows_merges_and_bounds():
    source = compile_ruleset(["abcd"])
    depth = source.depth_bound()
    windows = plan_windows([3, 4, 200], source, 150)
    # Adjacent ends merge into one window; out-of-range ends drop.
    assert windows == [(max(0, 3 - depth), 3, 5)]
    assert plan_windows([], source, 100) == []
    cyclic = compile_ruleset(["xy+z"])
    assert plan_windows([5], cyclic, 100) is None


def test_prefilter_cache_round_trip():
    source = compile_ruleset(["abc", "de[0-9]f"])
    prefilter = build_prefilter(source)
    clone = Prefilter.loads(prefilter.dumps())
    assert clone.filterable == prefilter.filterable
    assert clone.literals == prefilter.literals
    # Memoized: the second build serves the cached object.
    assert build_prefilter(source) is build_prefilter(source)
    with pytest.raises(PrefilterError):
        Prefilter.loads('{"format": "bogus"}')


def test_unfilterable_scan_raises():
    prefilter = build_prefilter(compile_ruleset(["a.*b"]))
    with pytest.raises(PrefilterError):
        prefilter.scan(b"data")


def test_hotcold_savings_recorded():
    source = compile_ruleset(["abc", "hello", "world"])
    split = record_hotcold_savings(source, b"abcabcabc" + b"Q" * 100, 0.9)
    assert 0.0 <= split.state_savings <= 1.0


def test_gated_stage_params_salt_keys():
    """prefilter/hotcold join simulate-stage params only when enabled."""
    from repro.experiments.table1 import simulation_params
    plain = simulation_params({"name": "x"})
    assert "prefilter" not in plain and "hotcold" not in plain
    gated = simulation_params({"name": "x"}, prefilter=True, hotcold=0.9)
    assert gated["prefilter"] is True
    assert gated["hotcold"] == 0.9
    from repro.runtime.stages import canonical
    assert canonical(plain) != canonical(gated)


def test_gated_stages_match_ungated_reports():
    """simulate8/simulate_strided emit identical events under the gate."""
    from repro.runtime.stages import get_stage
    from repro.workloads import generate

    instance = generate("ExactMatch", 0.005, 3)
    sim8 = get_stage("simulate8").func
    plain8 = sim8({"name": "ExactMatch"}, instance)
    gated8 = sim8({"name": "ExactMatch", "prefilter": True}, instance)
    assert gated8.recorder.events == plain8.recorder.events
    assert gated8.cycles == plain8.cycles

    strided = to_rate(instance.automaton, 4)
    sim_strided = get_stage("simulate_strided").func
    plain = sim_strided({"name": "ExactMatch", "rate": 4}, instance,
                        strided)
    gated = sim_strided({"name": "ExactMatch", "rate": 4,
                         "prefilter": True, "hotcold": 0.9}, instance,
                        strided)
    assert gated.recorder.events == plain.recorder.events
    assert gated.cycles == plain.cycles
