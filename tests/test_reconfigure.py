"""Multi-round reconfiguration tests."""

import pytest

from repro.core import (
    SunderConfig,
    configuration_write_cycles,
    partition_rounds,
    place,
    run_multi_round,
)
from repro.errors import CapacityError
from repro.regex import compile_ruleset
from repro.sim import BitsetEngine, stream_for
from repro.transform import to_rate


def _big_ruleset(n_rules):
    return compile_ruleset(
        ["r%03d[a-f]{6}" % index for index in range(n_rules)]
    )


@pytest.fixture(scope="module")
def machine():
    return to_rate(_big_ruleset(40), 1)


class TestPartition:
    def test_single_round_when_it_fits(self, machine):
        config = SunderConfig(rate_nibbles=1, report_bits=64)
        rounds = partition_rounds(machine, config, max_clusters=8)
        assert len(rounds) == 1
        assert len(rounds[0]) == len(machine)

    def test_splits_when_capacity_limited(self, machine):
        # report_bits=4 -> 16 reporting columns per cluster; 40 rules need
        # 40 reporting columns -> at least 3 rounds on a 1-cluster device.
        config = SunderConfig(rate_nibbles=1, report_bits=4)
        rounds = partition_rounds(machine, config, max_clusters=1)
        assert len(rounds) >= 3
        assert sum(len(r) for r in rounds) == len(machine)
        for machine_round in rounds:
            place(machine_round, config, max_clusters=1)  # must not raise

    def test_oversized_component_rejected(self):
        from repro.automata import Automaton, SymbolSet
        config = SunderConfig(rate_nibbles=1, report_bits=12)
        automaton = Automaton(bits=4, arity=1, start_period=2)
        previous = None
        for index in range(1200):
            state_id = "s%d" % index
            automaton.new_state(
                state_id, SymbolSet.full(4),
                start="all-input" if index == 0 else "none",
                report=index == 1199, report_code="end" if index == 1199 else None,
            )
            if previous:
                automaton.add_transition(previous, state_id)
            previous = state_id
        with pytest.raises(CapacityError):
            partition_rounds(automaton, config, max_clusters=4)


class TestExecution:
    def test_reports_match_single_round(self, machine):
        config = SunderConfig(rate_nibbles=1, report_bits=4)
        data = b"xx r007abcdef yy r023fedcba r001aaaaaa"
        vectors, limit = stream_for(machine, data)
        result = run_multi_round(machine, vectors, config, max_clusters=1,
                                 position_limit=limit)
        want = BitsetEngine(machine).run(vectors,
                                         position_limit=limit).event_keys()
        assert result.recorder.event_keys() == want
        assert result.rounds >= 3

    def test_cost_accounting(self, machine):
        config = SunderConfig(rate_nibbles=1, report_bits=4)
        vectors, limit = stream_for(machine, b"hello r000abcdef")
        result = run_multi_round(machine, vectors, config, max_clusters=1,
                                 position_limit=limit)
        assert result.total_cycles >= result.rounds * result.stream_cycles
        assert result.configure_cycles > 0
        assert result.slowdown_vs_single_round > result.rounds - 1


class TestConfigurationCost:
    def test_scales_with_pus(self, machine):
        config = SunderConfig(rate_nibbles=1, report_bits=64)
        placement = place(machine, config)
        cost = configuration_write_cycles(placement, config)
        # At minimum: matching rows + crossbar rows per used PU.
        pus = len(placement.pus_used())
        assert cost >= pus * (config.matching_rows + config.subarray_cols)
