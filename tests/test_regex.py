"""Regex parser/compiler tests, including differential tests vs `re`."""

import random
import re

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RegexError
from repro.regex import compile_pattern, compile_ruleset, find_match_ends, parse


def reference_match_ends(pattern, data, anchored=False):
    """All end indices of matches, via Python's re on every (start, end)."""
    body = pattern[1:] if anchored else pattern
    rx = re.compile(body.encode())
    ends = set()
    starts = [0] if anchored else range(len(data))
    for start in starts:
        for end in range(start, len(data)):
            if rx.fullmatch(data, start, end + 1):
                ends.add(end)
    return sorted(ends)


class TestParserErrors:
    @pytest.mark.parametrize("pattern", [
        "a**?", "a(b", "a)b", "[z-a]", "[]", "a{3,1}", "a|*", "(?=x)y",
        "\\1", "\\q", "a$", "a{,}", "[a", "\\x0",
    ])
    def test_rejected_patterns(self, pattern):
        with pytest.raises(RegexError):
            compile_pattern(pattern)

    def test_empty_language_rejected(self):
        with pytest.raises(RegexError):
            compile_pattern("a*")

    def test_error_carries_position(self):
        try:
            compile_pattern("ab(")
        except RegexError as error:
            assert error.pattern == "ab("
        else:
            pytest.fail("expected RegexError")


class TestParserFeatures:
    def test_anchoring_flag(self):
        _, anchored = parse("^abc")
        assert anchored
        _, unanchored = parse("abc")
        assert not unanchored

    def test_class_escapes(self):
        assert find_match_ends("\\d\\d", b"a42b") == [2]
        assert find_match_ends("\\w+", b"_a ") == [0, 1]
        assert find_match_ends("[\\d]", b"5") == [0]

    def test_negated_class(self):
        assert find_match_ends("[^a]", b"ab") == [1]

    def test_hex_escape(self):
        assert find_match_ends("\\x41", b"A") == [0]

    def test_dot_matches_any_byte(self):
        assert find_match_ends("a.c", bytes([ord("a"), 0, ord("c")])) == [2]

    def test_ignore_case(self):
        assert find_match_ends("abc", b"ABC", ignore_case=True) == [2]
        assert find_match_ends("[a-c]+", b"AB", ignore_case=True) == [0, 1]

    def test_bounded_repetition(self):
        assert find_match_ends("a{3}", b"aaaa") == [2, 3]
        assert find_match_ends("a{2,}b", b"aaab") == [3]

    def test_non_capturing_group(self):
        assert find_match_ends("(?:ab)+", b"abab") == [1, 3]


class TestCompilerVsRe:
    PATTERNS = [
        "abc", "a(b|c)d", "ab*c", "a.c", "[a-c]{2,4}x", "foo|bar+",
        "^start", "a+b+", "(ab)+c", "x\\d\\dz", "a(bc|de)*f", "[^xy]{2}q",
        "colou?r", "(a|b)(c|d)", "zz|z\\.z",
    ]

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_against_re(self, pattern):
        rng = random.Random(hash(pattern) & 0xFFFF)
        alphabet = b"abcdefxyz.01 qrstz"
        for _ in range(25):
            data = bytes(rng.choice(alphabet) for _ in range(rng.randint(0, 25)))
            got = find_match_ends(pattern, data)
            want = reference_match_ends(
                pattern, data, anchored=pattern.startswith("^")
            )
            assert got == want, (pattern, data)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.sampled_from(["a", "b", "c", "a|b", "[ab]", "a*", "b+", "c?", "."]),
        min_size=1, max_size=5,
    ), st.binary(max_size=16))
    def test_fuzzed_concatenations(self, pieces, raw):
        pattern = "".join(pieces)
        data = bytes(byte % 4 + ord("a") for byte in raw)
        try:
            got = find_match_ends(pattern, data)
        except RegexError:
            # Pattern accepts the empty string (e.g. "a*"); correctly rejected.
            assert re.fullmatch(pattern, "") is not None
            return
        want = reference_match_ends(pattern, data)
        assert got == want, (pattern, data)


class TestHomogeneity:
    def test_glushkov_produces_homogeneous_nfa(self):
        automaton = compile_pattern("a(b|c)+d")
        automaton.validate()
        # Homogeneous: every state has exactly one symbol set.
        for state in automaton:
            assert state.arity == 1

    def test_report_code_default_is_pattern(self):
        automaton = compile_pattern("ab")
        assert automaton.report_states()[0].report_code == "ab"

    def test_anchored_patterns_use_start_of_data(self):
        from repro.automata import StartKind
        automaton = compile_pattern("^ab")
        kinds = {s.start for s in automaton.start_states()}
        assert kinds == {StartKind.START_OF_DATA}


class TestRuleset:
    def test_report_codes_identify_rules(self, small_ruleset):
        from repro.sim import BitsetEngine
        recorder = BitsetEngine(small_ruleset).run(list(b"abc then xyz then 123"))
        codes = {code for _, code in recorder.event_keys()}
        assert codes == {0, 2, 3}

    def test_pairs_give_custom_codes(self):
        machine = compile_ruleset([("ab", "alpha"), ("cd", "beta")])
        codes = {s.report_code for s in machine.report_states()}
        assert codes == {"alpha", "beta"}

    def test_empty_ruleset_rejected(self):
        with pytest.raises(RegexError):
            compile_ruleset([])


class TestClassCornerCases:
    def test_closing_bracket_as_first_member(self):
        assert find_match_ends("[]]", b"]") == [0]

    def test_trailing_dash_is_literal(self):
        assert find_match_ends("[a-]", b"-a") == [0, 1]

    def test_class_escape_inside_class(self):
        assert find_match_ends("[\\d\\n]", b"7\n") == [0, 1]

    def test_negated_class_with_range(self):
        ends = find_match_ends("[^a-y]", b"az")
        assert ends == [1]

    def test_dash_range_to_escape(self):
        # Range whose high bound is an escape: [\x30-\x39] == [0-9].
        assert find_match_ends("[\\x30-\\x39]", b"a5") == [1]

    def test_nested_groups_with_quantifiers(self):
        assert find_match_ends("((ab)+c)+d", b"ababcabcd") == [8]

    def test_alternation_of_different_lengths(self):
        assert find_match_ends("a|bc|def", b"adefbc") == [0, 3, 5]
