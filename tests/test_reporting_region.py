"""Reporting-region tests: geometry, append/read, FIFO, flush, summarize."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ReportingRegion, SramSubarray, SunderConfig
from repro.errors import ArchitectureError


def _region(rate=4, fifo=False, m=12, n=20, **kwargs):
    config = SunderConfig(rate_nibbles=rate, report_bits=m, metadata_bits=n,
                          fifo=fifo, **kwargs)
    subarray = SramSubarray(config.subarray_rows, config.subarray_cols)
    return ReportingRegion(subarray, config), config


def _bits(config, *set_positions):
    bits = np.zeros(config.report_bits, dtype=bool)
    for position in set_positions:
        bits[position] = True
    return bits


class TestGeometry:
    @pytest.mark.parametrize("rate,rows", [(1, 240), (2, 224), (4, 192)])
    def test_report_rows_by_rate(self, rate, rows):
        _, config = _region(rate=rate)
        assert config.report_rows == rows

    def test_capacity(self):
        _, config = _region(rate=4, m=12, n=20)
        # 32-bit entries, 8 per 256-bit row, 192 rows.
        assert config.entries_per_row == 8
        assert config.report_capacity == 1536

    def test_local_counter_size_matches_equation_1(self):
        # Paper example: 16-bit processing, m=8, n=24 -> 16-bit counter.
        config = SunderConfig(rate_nibbles=4, report_bits=8, metadata_bits=24)
        assert config.local_counter_bits() == 8 + 3

    def test_entry_must_fit_in_row(self):
        with pytest.raises(ArchitectureError):
            SunderConfig(report_bits=200, metadata_bits=100)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ArchitectureError):
            SunderConfig(rate_nibbles=3)


class TestAppendAndRead:
    def test_roundtrip_single_entry(self):
        region, config = _region()
        region.append(_bits(config, 0, 5), cycle=42)
        entries = region.read_entries()
        assert len(entries) == 1
        assert entries[0].cycle == 42
        assert list(np.flatnonzero(entries[0].report_vector)) == [0, 5]

    def test_entries_pack_within_rows(self):
        region, config = _region()
        for cycle in range(10):
            region.append(_bits(config, cycle % config.report_bits), cycle)
        assert region.used_rows == 2  # 8 entries/row
        entries = region.read_entries()
        assert [entry.cycle for entry in entries] == list(range(10))

    def test_metadata_truncates_modulo(self):
        region, config = _region(n=8)
        region.append(_bits(config, 0), cycle=300)
        assert region.read_entries()[0].cycle == 300 % 256

    def test_wrong_width_rejected(self):
        region, config = _region()
        with pytest.raises(ArchitectureError):
            region.append(np.zeros(config.report_bits + 1, dtype=bool), 0)

    def test_read_entry_selective(self):
        region, config = _region()
        for cycle in range(5):
            region.append(_bits(config, 1), cycle)
        assert region.read_entry(3).cycle == 3
        with pytest.raises(ArchitectureError):
            region.read_entry(5)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 11), st.integers(0, 2 ** 20 - 1)),
                    min_size=1, max_size=40))
    def test_roundtrip_property(self, items):
        region, config = _region()
        for position, cycle in items:
            region.append(_bits(config, position), cycle)
        entries = region.read_entries()
        assert len(entries) == len(items)
        for entry, (position, cycle) in zip(entries, items):
            assert entry.cycle == cycle
            assert list(np.flatnonzero(entry.report_vector)) == [position]


class TestFlush:
    def test_flush_on_overflow(self):
        region, config = _region(flush_rows_per_cycle=64)
        sunk = []
        region.sink = sunk.append
        for cycle in range(config.report_capacity + 1):
            region.append(_bits(config, 0), cycle)
        assert region.flushes == 1
        assert region.stall_cycles == 3  # ceil(192 / 64)
        # The flushed batch reached the host; one entry remains buffered.
        assert len(sunk) == 1 and len(sunk[0]) == config.report_capacity
        assert region.count == 1

    def test_flush_empty_is_free(self):
        region, _ = _region()
        assert region.flush() == 0
        assert region.flushes == 0

    def test_flush_stall_scales_with_used_rows(self):
        region, config = _region(flush_rows_per_cycle=1)
        for cycle in range(config.entries_per_row * 2):  # two rows
            region.append(_bits(config, 0), cycle)
        assert region.flush() == 2


class TestFifo:
    def test_background_drain_frees_space(self):
        region, config = _region(fifo=True, fifo_drain_rows_per_cycle=1.0)
        drained = []
        region.sink = drained.extend
        for cycle in range(8):
            region.append(_bits(config, 0), cycle)
        region.tick()
        assert region.count == 0
        assert [entry.cycle for entry in drained] == list(range(8))

    def test_fractional_drain_accumulates_credit(self):
        region, config = _region(fifo=True, fifo_drain_rows_per_cycle=0.0625)
        region.append(_bits(config, 0), 0)
        assert region.tick() == 0  # credit 0.5 entries (0.0625 * 8)
        assert region.tick() == 1  # credit reaches 1.0

    def test_explicit_budget_overrides(self):
        region, config = _region(fifo=True)
        for cycle in range(6):
            region.append(_bits(config, 0), cycle)
        assert region.tick(max_entries=4) == 4
        assert region.count == 2

    def test_disabled_fifo_never_drains(self):
        region, config = _region(fifo=False)
        region.append(_bits(config, 0), 0)
        assert region.tick() == 0
        assert region.count == 1

    def test_wraparound_preserves_order(self):
        region, config = _region(fifo=True)
        total = config.report_capacity + config.entries_per_row
        received = []
        region.sink = received.extend
        for cycle in range(total):
            region.append(_bits(config, 0), cycle)
            region.tick(max_entries=1)
        received.extend(region.read_entries())
        assert [entry.cycle for entry in received] == list(range(total))
        assert region.flushes == 0  # drain kept up


class TestSummarize:
    def test_summary_ors_report_columns(self):
        region, config = _region()
        region.append(_bits(config, 2), 0)
        region.append(_bits(config, 7), 1)
        summary, stall = region.summarize()
        assert list(np.flatnonzero(summary)) == [2, 7]
        assert stall == config.summarize_stall_cycles  # one 16-row batch

    def test_summary_stall_scales_with_rows(self):
        region, config = _region()
        for cycle in range(config.entries_per_row * 40):  # 40 rows
            region.append(_bits(config, 1), cycle)
        _, stall = region.summarize()
        assert stall == config.summarize_stall_cycles * 3  # ceil(40/16)

    def test_empty_region_summary(self):
        region, _ = _region()
        summary, stall = region.summarize()
        assert not summary.any() and stall == 0
