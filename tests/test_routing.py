"""Interconnect-routability model tests."""

import pytest

from repro.core import SunderConfig, place
from repro.core.routing import (
    BankedCrossbar,
    BoundedFanIn,
    FullCrossbar,
    NeighborMesh,
    routability_study,
)
from repro.regex import compile_ruleset
from repro.transform import to_rate


@pytest.fixture(scope="module")
def placed():
    machine = to_rate(compile_ruleset(
        ["ab(c|d|e|f)g", "x[0-9]{3}y", "hub(a|b|c|d)+end"]
    ), 2)
    config = SunderConfig(rate_nibbles=2, report_bits=16)
    return machine, place(machine, config)


class TestFullCrossbar:
    def test_routes_everything(self, placed):
        machine, placement = placed
        report = FullCrossbar().evaluate(machine, placement)
        assert report["routable_pct"] == 100.0
        assert report["failures"] == []
        assert report["edges"] == machine.num_transitions()


class TestBankedCrossbar:
    def test_generous_ports_route_everything(self, placed):
        machine, placement = placed
        report = BankedCrossbar(bank_size=64,
                                ports_per_bank_pair=10_000).evaluate(
            machine, placement)
        assert report["routable_pct"] == 100.0

    def test_starved_ports_fail_cross_bank_edges(self, placed):
        machine, placement = placed
        report = BankedCrossbar(bank_size=8,
                                ports_per_bank_pair=0).evaluate(
            machine, placement)
        assert report["routable_pct"] < 100.0
        assert report["failures"]


class TestBoundedFanIn:
    def test_high_fan_in_states_fail_small_k(self, placed):
        machine, placement = placed
        generous = BoundedFanIn(max_fan_in=64).evaluate(machine, placement)
        strict = BoundedFanIn(max_fan_in=1).evaluate(machine, placement)
        assert generous["routable_pct"] == 100.0
        assert strict["routable_pct"] < generous["routable_pct"]


class TestNeighborMesh:
    def test_local_chains_route_with_contiguous_placement(self):
        # A single literal chain placed contiguously is mesh-friendly.
        machine = to_rate(compile_ruleset(["abcdef"]), 2)
        placement = place(machine, SunderConfig(rate_nibbles=2,
                                                report_bits=16))
        report = NeighborMesh(reach=256).evaluate(machine, placement)
        assert report["routable_pct"] == 100.0

    def test_report_column_jump_defeats_small_reach(self, placed):
        # Reporting states live in the last columns: the edge into them
        # jumps across the subarray, defeating short-reach meshes.
        machine, placement = placed
        report = NeighborMesh(reach=4).evaluate(machine, placement)
        assert report["routable_pct"] < 100.0


class TestStudy:
    def test_study_runs_all_models(self, placed):
        machine, placement = placed
        reports = routability_study(machine, placement)
        names = [report["interconnect"] for report in reports]
        assert names[0] == "full-crossbar"
        assert len(reports) == 4
        # The full crossbar dominates every alternative.
        for report in reports[1:]:
            assert report["routable_pct"] <= reports[0]["routable_pct"]
