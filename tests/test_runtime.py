"""Tests for the stage-graph runtime (repro.runtime).

Covers the artifact store's tiers (memory LRU, atomic disk artifacts,
corruption-degrades-to-miss), the per-kind codecs' round trips, graph
construction (deduplication, topological keys, error cases), and the
scheduler's demand pruning — a warm store must skip the expensive
upstream stages entirely.
"""

import json
import os

import pytest

from repro import obs
from repro.errors import ArtifactError, StageGraphError
from repro.runtime import store as runtime_store
from repro.runtime.artifacts import (INSTANCE_CODEC, JSON_CODEC,
                                     SIMRUN_CODEC, SimRun)
from repro.runtime.graph import Runtime, StageGraph
from repro.runtime.stages import REGISTRY, canonical, get_stage
from repro.runtime.store import ArtifactStore, JsonCodec, artifact_key
from repro.core.config import SunderConfig
from repro.sim.reports import ReportRecorder
from repro.transform import cache as transform_cache
from repro.workloads import generate


@pytest.fixture(autouse=True)
def fresh_stores():
    """Every test starts and ends with pristine memory-only stores."""
    runtime_store.configure()
    transform_cache.configure()
    yield
    runtime_store.configure()
    transform_cache.configure()


def _instance(name="Bro217", scale=0.002, seed=0):
    return generate(name, scale=scale, seed=seed)


class TestArtifactKey:
    def test_kind_prefix_and_stability(self):
        key = artifact_key("instance", "generate", "a", "b")
        assert key.startswith("instance-")
        assert key == artifact_key("instance", "generate", "a", "b")

    def test_parts_and_kind_change_key(self):
        base = artifact_key("instance", "generate", "a")
        assert artifact_key("instance", "generate", "b") != base
        assert artifact_key("simrun", "generate", "a") != base
        # Part boundaries matter: ("ab", "c") must not equal ("a", "bc").
        assert artifact_key("json", "ab", "c") != artifact_key("json", "a", "bc")


def _json_round_trip(value):
    return JSON_CODEC.decode(JSON_CODEC.encode(value))


class TestCodecs:
    def test_json_codec_round_trip(self):
        value = {"a": [1, 2.5, "x"], "b": None}
        assert _json_round_trip(value) == value

    def test_json_codec_rejects_garbage(self):
        for text in ("not json", '{"format": "other"}',
                     '{"format": "repro-json", "version": 2}'):
            with pytest.raises(ArtifactError):
                JSON_CODEC.decode(text)

    def test_json_codec_copy_decouples(self):
        master = {"rows": [1, 2]}
        served = JSON_CODEC.copy(master)
        served["rows"].append(3)
        assert master["rows"] == [1, 2]

    def test_instance_codec_round_trip(self):
        instance = _instance()
        decoded = INSTANCE_CODEC.decode(INSTANCE_CODEC.encode(instance))
        assert decoded.name == instance.name
        assert decoded.family == instance.family
        assert decoded.input_bytes == instance.input_bytes
        assert decoded.paper_row == instance.paper_row
        assert decoded.automaton.dumps() == instance.automaton.dumps()

    def test_instance_codec_copy_decouples_automaton(self):
        instance = _instance()
        copy = INSTANCE_CODEC.copy(instance)
        assert copy.automaton is not instance.automaton
        assert copy.automaton.dumps() == instance.automaton.dumps()

    def test_simrun_codec_round_trip(self):
        instance = _instance()
        run = get_stage("simulate8").func({"name": instance.name}, instance)
        decoded = SIMRUN_CODEC.decode(SIMRUN_CODEC.encode(run))
        assert decoded.summary() == run.summary()
        assert len(decoded.recorder.events) == len(run.recorder.events)

    def test_simrun_codec_rejects_garbage(self):
        with pytest.raises(ArtifactError):
            SIMRUN_CODEC.decode("[]")
        with pytest.raises(ArtifactError):
            SIMRUN_CODEC.decode(json.dumps(
                {"format": "repro-simrun", "version": 99}))


class TestArtifactStore:
    def test_memory_hit_serves_copy(self):
        store = ArtifactStore()
        store.put("json-k", {"a": 1}, JSON_CODEC)
        first = store.get("json-k", JSON_CODEC)
        first["a"] = 99
        assert store.get("json-k", JSON_CODEC) == {"a": 1}
        assert store.stats["memory_hits"] == 2

    def test_disk_tier_survives_new_store(self, tmp_path):
        ArtifactStore(directory=str(tmp_path)).put(
            "json-k", [1, 2, 3], JSON_CODEC)
        fresh = ArtifactStore(directory=str(tmp_path))
        assert fresh.get("json-k", JSON_CODEC) == [1, 2, 3]
        assert fresh.stats["disk_hits"] == 1

    def test_corrupt_artifact_degrades_to_miss(self, tmp_path):
        store = ArtifactStore(directory=str(tmp_path))
        path = tmp_path / "json-k.json"
        path.write_text("{garbage", encoding="utf-8")
        assert store.get("json-k", JSON_CODEC) is None
        assert store.stats["corrupt"] == 1
        assert store.stats["misses"] == 1
        assert path.exists()  # left in place for post-mortem

    def test_fetch_memoizes(self):
        store = ArtifactStore()
        calls = []

        def build():
            calls.append(1)
            return {"v": 1}

        value, hit = store.fetch("json-k", JSON_CODEC, build)
        assert (value, hit, len(calls)) == ({"v": 1}, None, 1)
        value, hit = store.fetch("json-k", JSON_CODEC, build)
        assert (value, hit, len(calls)) == ({"v": 1}, "memory", 1)

    def test_lru_eviction(self):
        store = ArtifactStore(memory_entries=2)
        for index in range(3):
            store.put("json-%d" % index, index, JSON_CODEC)
        assert store.stats["evictions"] == 1
        assert store.get("json-0", JSON_CODEC) is None

    def test_clear_and_info(self, tmp_path):
        store = ArtifactStore(directory=str(tmp_path))
        store.put("json-a", 1, JSON_CODEC)
        store.put("json-b", 2, JSON_CODEC)
        info = store.info()
        assert info["memory_used"] == 2
        assert info["disk_entries"] == 2
        assert info["disk_bytes"] > 0
        assert store.clear() == 4  # two memory entries + two files
        assert store.info()["disk_entries"] == 0

    def test_configure_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv(runtime_store.ENV_VAR, str(tmp_path))
        runtime_store.configure()  # reset so get_store re-reads the env
        runtime_store._ACTIVE = None
        assert runtime_store.get_store().directory == str(tmp_path)


class TestCanonical:
    def test_dict_order_independent(self):
        assert canonical({"b": 2, "a": 1}) == canonical({"a": 1, "b": 2})

    def test_config_fields_distinguish(self):
        a = SunderConfig(report_bits=12)
        b = SunderConfig(report_bits=16)
        assert canonical(a) != canonical(b)
        assert canonical(a) == canonical(SunderConfig(report_bits=12))

    def test_sequences_recurse(self):
        assert canonical([1, (2, 3)]) == "[1,[2,3]]"


class TestStageGraph:
    def test_dedup_same_signature(self):
        graph = StageGraph()
        a = graph.task("generate", {"name": "Bro217", "scale": 0.002,
                                    "seed": 0})
        b = graph.task("generate", {"name": "Bro217", "scale": 0.002,
                                    "seed": 0})
        assert a is b
        assert len(graph) == 1

    def test_params_change_identity_and_key(self):
        graph = StageGraph()
        a = graph.task("generate", {"name": "Bro217", "scale": 0.002,
                                    "seed": 0})
        b = graph.task("generate", {"name": "Bro217", "scale": 0.002,
                                    "seed": 1})
        assert a is not b
        assert a.key != b.key

    def test_key_chains_through_dependencies(self):
        graph = StageGraph()
        gen0 = graph.task("generate", {"name": "Bro217", "scale": 0.002,
                                       "seed": 0})
        gen1 = graph.task("generate", {"name": "Bro217", "scale": 0.002,
                                       "seed": 1})
        sim0 = graph.task("simulate8", {"name": "Bro217"}, deps=[gen0])
        sim1 = graph.task("simulate8", {"name": "Bro217"}, deps=[gen1])
        assert sim0.key != sim1.key

    def test_foreign_dependency_rejected(self):
        other = StageGraph()
        gen = other.task("generate", {"name": "Bro217", "scale": 0.002,
                                      "seed": 0})
        graph = StageGraph()
        with pytest.raises(StageGraphError):
            graph.task("simulate8", {"name": "Bro217"}, deps=[gen])

    def test_unknown_stage_rejected(self):
        with pytest.raises(StageGraphError):
            StageGraph().task("no_such_stage")

    def test_cacheable_on_uncached_rejected(self):
        graph = StageGraph()
        gen = graph.task("generate", {"name": "Bro217", "scale": 0.002,
                                      "seed": 0})
        strided = graph.task("to_rate", {"name": "Bro217", "rate": 4},
                             deps=[gen])
        placed = graph.task("place", {"name": "Bro217", "rate": 4},
                            deps=[strided])
        assert placed.key is None  # uncacheable stages have no address
        with pytest.raises(StageGraphError):
            graph.task("table1_row", {"name": "Bro217"}, deps=[placed])

    def test_registry_cacheability(self):
        cached = {name for name, entry in REGISTRY.items() if entry.cacheable}
        assert {"generate", "simulate8", "to_rate", "simulate_strided",
                "table1_row", "table3_row"} <= cached
        assert {"place", "report_drain", "figure9_arch",
                "figure10_point"}.isdisjoint(cached)


def _table1_graph(graph, name="Bro217", scale=0.002, seed=0):
    gen = graph.task("generate", {"name": name, "scale": scale,
                                  "seed": seed})
    sim = graph.task("simulate8", {"name": name}, deps=[gen])
    return graph.task("table1_row", {"name": name}, deps=[gen, sim])


class TestRuntimeExecute:
    def test_results_match_direct_execution(self):
        graph = StageGraph()
        row_task = _table1_graph(graph)
        results = Runtime(store=ArtifactStore()).execute(graph)
        instance = _instance()
        run8 = get_stage("simulate8").func({"name": "Bro217"}, instance)
        expected = get_stage("table1_row").func(
            {"name": "Bro217"}, instance, run8)
        assert results[row_task] == expected

    def test_warm_store_skips_upstream_stages(self):
        store = ArtifactStore()
        graph = StageGraph()
        _table1_graph(graph)
        Runtime(store=store).execute(graph)
        assert store.stats["stores"] == 3

        before = dict(store.stats)
        warm_graph = StageGraph()
        target = _table1_graph(warm_graph)
        results = Runtime(store=store).execute(warm_graph, targets=[target])
        # Only the row itself is probed: its hit removes the demand on
        # generate/simulate8 entirely (no extra lookups, no executions).
        assert store.stats["memory_hits"] == before["memory_hits"] + 1
        assert store.stats["misses"] == before["misses"]
        assert store.stats["stores"] == before["stores"]
        assert results[target]["benchmark"] == "Bro217"

    def test_warm_and_cold_results_identical(self):
        store = ArtifactStore()
        cold_graph = StageGraph()
        cold_target = _table1_graph(cold_graph)
        cold = Runtime(store=store).execute(cold_graph)[cold_target]
        warm_graph = StageGraph()
        warm_target = _table1_graph(warm_graph)
        warm = Runtime(store=store).execute(warm_graph)[warm_target]
        assert cold == warm

    def test_targets_prune_undemanded_tasks(self):
        store = ArtifactStore()
        graph = StageGraph()
        gen = graph.task("generate", {"name": "Bro217", "scale": 0.002,
                                      "seed": 0})
        graph.task("simulate8", {"name": "Bro217"}, deps=[gen])
        results = Runtime(store=store).execute(graph, targets=[gen])
        assert set(results) == {gen}
        assert store.stats["stores"] == 1  # simulate8 never ran

    def test_foreign_target_rejected(self):
        graph = StageGraph()
        _table1_graph(graph)
        other = StageGraph()
        foreign = _table1_graph(other)
        with pytest.raises(StageGraphError):
            Runtime(store=ArtifactStore()).execute(graph, targets=[foreign])

    def test_stage_metrics_recorded(self):
        registry = obs.MetricsRegistry()
        store = ArtifactStore()
        with obs.collecting(registry=registry):
            graph = StageGraph()
            _table1_graph(graph)
            Runtime(store=store).execute(graph)
            warm = StageGraph()
            _table1_graph(warm)
            Runtime(store=store).execute(warm)
        misses = registry.get("repro_runtime_stage_misses_total")
        hits = registry.get("repro_runtime_stage_hits_total")
        assert misses.labels(stage="generate").value == 1
        assert misses.labels(stage="simulate8").value == 1
        assert misses.labels(stage="table1_row").value == 1
        assert hits.labels(stage="table1_row").value == 1
        assert registry.get("repro_runtime_stage_seconds") is not None
