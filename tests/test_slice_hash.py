"""LLC slice-hash tests (Section 6 integration model)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.slice_hash import MAURICE_MASKS, SliceHash, _parity
from repro.errors import ArchitectureError

addresses = st.integers(min_value=0, max_value=(1 << 40) - 1)


class TestParity:
    @given(addresses)
    def test_parity_matches_bin_count(self, value):
        assert _parity(value) == bin(value).count("1") % 2


class TestSliceHash:
    @pytest.mark.parametrize("num_slices", [2, 4, 8])
    def test_slice_in_range(self, num_slices):
        hasher = SliceHash(num_slices)
        for address in range(0, 1 << 16, 64):
            assert 0 <= hasher.slice_of(address) < num_slices

    def test_xor_linearity(self):
        # The hash is linear over GF(2): slice(a ^ b) == slice(a) ^ slice(b).
        hasher = SliceHash(4)
        for a, b in [(0x1240, 0x81C0), (0xFFFC0, 0x12340), (0x40, 0x80)]:
            assert hasher.slice_of(a ^ b) == (
                hasher.slice_of(a) ^ hasher.slice_of(b)
            )

    def test_unsupported_slice_count_rejected(self):
        with pytest.raises(ArchitectureError):
            SliceHash(3)

    def test_negative_address_rejected(self):
        with pytest.raises(ArchitectureError):
            SliceHash(2).slice_of(-1)

    @given(addresses)
    def test_consecutive_lines_spread(self, base):
        # The whole point of the hash: consecutive lines may land on
        # different slices, so flat access needs the inverse scan.
        hasher = SliceHash(8)
        base &= ~0x3F
        slices = {hasher.slice_of(base + index * 64) for index in range(64)}
        assert len(slices) >= 2

    def test_balance_over_large_range(self):
        hasher = SliceHash(4)
        histogram = hasher.slice_histogram(0, 4096)
        assert sum(histogram) == 4096
        for count in histogram:
            assert count == pytest.approx(1024, rel=0.1)


class TestInverseScan:
    def test_addresses_land_on_target(self):
        hasher = SliceHash(4)
        for target in range(4):
            found = hasher.addresses_in_slice(target, 32)
            assert len(found) == 32
            assert all(hasher.slice_of(a) == target for a in found)
            assert all(a % 64 == 0 for a in found)

    def test_target_out_of_range(self):
        with pytest.raises(ArchitectureError):
            SliceHash(2).addresses_in_slice(2, 4)

    def test_masks_are_distinct(self):
        for masks in MAURICE_MASKS.values():
            assert len(set(masks)) == len(masks)
