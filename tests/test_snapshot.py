"""Device-serialization tests: a reloaded device is bit-equivalent."""

import pytest

from repro.core import SunderConfig, SunderDevice
from repro.core.snapshot import load_device, save_device
from repro.errors import ArchitectureError
from repro.regex import compile_ruleset
from repro.sim import BitsetEngine, stream_for
from repro.transform import to_rate


@pytest.fixture
def machine():
    return to_rate(compile_ruleset([("abc", "A"), ("xyz", "X")]), 4)


def _device(machine, fifo=False):
    device = SunderDevice(SunderConfig(rate_nibbles=4, report_bits=16,
                                       fifo=fifo))
    device.configure(machine)
    return device


class TestRoundTrip:
    def test_fresh_device_roundtrip(self, machine):
        device = _device(machine)
        clone = load_device(save_device(device))
        data = b"zz abc zz xyz zz"
        vectors, limit = stream_for(machine, data)
        result = clone.run(vectors, position_limit=limit)
        want = BitsetEngine(machine).run(
            vectors, position_limit=limit
        ).event_keys()
        assert result.reports().event_keys() == want

    def test_mid_stream_resume(self, machine):
        device = _device(machine)
        data = b"zz abc zz xyz zz"
        vectors, limit = stream_for(machine, data)
        split = 5  # mid-'abc' at byte granularity
        for vector in vectors[:split]:
            device.step(vector)

        clone = load_device(save_device(device))
        for vector in vectors[split:]:
            device.step(vector)
            clone.step(tuple(vector) if not isinstance(vector, tuple)
                       else vector)
        assert (clone.report_events(position_limit=limit).event_keys()
                == device.report_events(position_limit=limit).event_keys())

    def test_buffered_reports_survive(self, machine):
        device = _device(machine)
        vectors, limit = stream_for(machine, b"abcabcabc")
        for vector in vectors:
            device.step(vector)
        buffered = device.statistics()["buffered_entries"]
        assert buffered > 0
        clone = load_device(save_device(device))
        assert clone.statistics()["buffered_entries"] == buffered
        assert (clone.report_events(position_limit=limit).event_keys()
                == device.report_events(position_limit=limit).event_keys())

    def test_without_dynamic_state(self, machine):
        device = _device(machine)
        vectors, _ = stream_for(machine, b"abc")
        for vector in vectors:
            device.step(vector)
        clone = load_device(save_device(device, include_dynamic_state=False))
        assert clone.statistics()["buffered_entries"] == 0
        assert clone.global_cycle == 0

    def test_placement_preserved_exactly(self, machine):
        device = _device(machine)
        clone = load_device(save_device(device))
        for state_id, slot in device.placement.slots.items():
            assert clone.placement.slots[state_id] == slot

    def test_unconfigured_rejected(self):
        with pytest.raises(ArchitectureError):
            save_device(SunderDevice())

    def test_bad_version_rejected(self, machine):
        import json
        text = save_device(_device(machine))
        document = json.loads(text)
        document["version"] = 99
        with pytest.raises(ArchitectureError):
            load_device(json.dumps(document))
