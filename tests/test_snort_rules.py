"""Snort rule-file front-end tests."""

import pytest

from repro.errors import WorkloadError
from repro.sim import BitsetEngine
from repro.workloads.snort_rules import (
    _decode_content,
    compile_rules,
    parse_rule,
    parse_rules,
)

RULE_FILE = """
# sample ruleset
alert tcp any any -> any any (msg:"admin probe"; content:"GET /admin"; sid:1001;)
alert tcp any any -> any any (msg:"crlf evil"; content:"evil|0d 0a|"; sid:1002;)
alert tcp any any -> any any (msg:"case"; content:"LOGIN"; nocase; sid:1003;)
alert tcp any any -> any any (msg:"regex"; pcre:"/pass[0-9]{2}/"; sid:1004;)
alert tcp any any -> any any (msg:"two contents"; content:"user="; content:"admin"; sid:1005;)
"""


def _hits(automaton, data):
    recorder = BitsetEngine(automaton).run(list(data))
    return {code for _, code in recorder.event_keys()}


class TestContentDecoding:
    def test_plain_text(self):
        assert _decode_content('"abc"') == b"abc"

    def test_hex_blocks(self):
        assert _decode_content('"a|0d 0A|b"') == b"a\r\nb"

    def test_escapes(self):
        assert _decode_content('"a\\"b"') == b'a"b'

    def test_unquoted_rejected(self):
        with pytest.raises(WorkloadError):
            _decode_content("abc")

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            _decode_content('""')


class TestParsing:
    def test_parse_rule_fields(self):
        rule = parse_rule(
            'alert tcp any any -> any any (msg:"x"; content:"abc"; '
            'flow:to_server; sid:7;)'
        )
        assert rule.sid == 7
        assert rule.contents == [(b"abc", False)]
        assert "flow" in rule.ignored_options

    def test_nocase_applies_to_last_content(self):
        rule = parse_rule(
            'alert tcp any any -> any any (content:"a"; content:"b"; '
            'nocase; sid:1;)'
        )
        assert rule.contents == [(b"a", False), (b"b", True)]

    def test_missing_sid_rejected(self):
        with pytest.raises(WorkloadError):
            parse_rule('alert tcp any any -> any any (content:"a";)')

    def test_not_a_rule_rejected(self):
        with pytest.raises(WorkloadError):
            parse_rule("this is not a rule")

    def test_nocase_without_content_rejected(self):
        with pytest.raises(WorkloadError):
            parse_rule('alert tcp any any -> any any (nocase; sid:1;)')

    def test_parse_rules_skips_comments(self):
        rules = parse_rules(RULE_FILE)
        assert [rule.sid for rule in rules] == [1001, 1002, 1003, 1004, 1005]

    def test_line_numbers_in_errors(self):
        with pytest.raises(WorkloadError) as excinfo:
            parse_rules("alert tcp any any -> any any (content:\"a\";)")
        assert "line 1" in str(excinfo.value)


class TestCompilation:
    @pytest.fixture(scope="class")
    def machine(self):
        return compile_rules(RULE_FILE)

    def test_plain_content(self, machine):
        assert 1001 in _hits(machine, b"GET /admin HTTP/1.1")
        assert 1001 not in _hits(machine, b"GET /index")

    def test_hex_content(self, machine):
        assert 1002 in _hits(machine, b"xx evil\r\n yy")

    def test_nocase_content(self, machine):
        assert 1003 in _hits(machine, b"login")
        assert 1003 in _hits(machine, b"LoGiN")

    def test_pcre(self, machine):
        assert 1004 in _hits(machine, b"pass42")
        assert 1004 not in _hits(machine, b"passwd")

    def test_ordered_contents(self, machine):
        assert 1005 in _hits(machine, b"user=joe admin")
        assert 1005 not in _hits(machine, b"admin user=joe")

    def test_compiles_through_the_pipeline(self, machine):
        from repro.transform import check_equivalent, to_rate
        strided = to_rate(machine, 4)
        check_equivalent(machine, strided, b"GET /admin evil\r\n pass42")
