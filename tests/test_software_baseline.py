"""Software-baseline (DFA) tests: correctness and the blowup motivation."""

import random

import pytest

from repro.baselines.software import DfaMatcher, determinize, software_cost_model
from repro.errors import CapacityError
from repro.regex import compile_pattern, compile_ruleset
from repro.sim import BitsetEngine
from conftest import random_automaton


def _nfa_hits(automaton, data):
    recorder = BitsetEngine(automaton).run(list(data))
    return {(event.position, event.report_code) for event in recorder.events}


class TestDeterminize:
    @pytest.mark.parametrize("pattern", ["abc", "a(b|c)+d", "ab*c", "x.y"])
    def test_dfa_equivalent_to_nfa(self, pattern):
        automaton = compile_pattern(pattern)
        matcher = DfaMatcher(determinize(automaton))
        rng = random.Random(hash(pattern) & 0xFFFF)
        for _ in range(20):
            data = bytes(rng.choice(b"abcdxy.")
                         for _ in range(rng.randint(0, 30)))
            assert matcher.run(data) == _nfa_hits(automaton, data), data

    @pytest.mark.parametrize("seed", range(8))
    def test_random_nfa_equivalence(self, seed):
        rng = random.Random(seed)
        automaton = random_automaton(rng, n_states=6, bits=4,
                                     edge_density=0.3)
        if len(automaton) == 0:
            return
        matcher = DfaMatcher(determinize(automaton))
        for _ in range(8):
            data = [rng.randrange(16) for _ in range(rng.randint(0, 20))]
            assert matcher.run(data) == _nfa_hits(automaton, data)

    def test_ruleset_accepts_carry_all_codes(self):
        machine = compile_ruleset([("ab", "A"), ("b", "B")])
        dfa = determinize(machine)
        hits = DfaMatcher(dfa).run(b"ab")
        assert hits == {(1, "A"), (1, "B")}

    def test_anchored_pattern(self):
        automaton = compile_pattern("^ab", report_code="X")
        matcher = DfaMatcher(determinize(automaton))
        assert matcher.run(b"ab") == {(1, "X")}
        assert matcher.run(b"xab") == set()

    def test_dotstar_blowup_is_observable(self):
        # k unanchored '<lit>.*<lit>' patterns need ~2^k DFA subsets: each
        # pattern's middle can independently be "armed".
        patterns = ["%s.*%s" % (chr(97 + i) * 2, chr(110 + i) * 2)
                    for i in range(8)]
        machine = compile_ruleset(patterns)
        with pytest.raises(CapacityError):
            determinize(machine, max_states=200)

    def test_small_machine_stays_small(self, abc_automaton):
        dfa = determinize(abc_automaton)
        assert dfa.num_states <= 5
        assert dfa.table_bytes() == dfa.num_states * 256 * 4


class TestCostModel:
    def test_dfa_wins_accesses_but_pays_memory(self, abc_automaton):
        dfa = determinize(abc_automaton)
        costs = software_cost_model(abc_automaton, avg_active_states=3.0,
                                    dfa=dfa)
        assert costs["dfa_accesses_per_byte"] == 1.0
        assert costs["nfa_accesses_per_byte"] == 4.0
        assert costs["dfa_memory_bytes"] > 0

    def test_blowup_reported_as_none(self, abc_automaton):
        costs = software_cost_model(abc_automaton, avg_active_states=2.0)
        assert costs["dfa_accesses_per_byte"] is None
