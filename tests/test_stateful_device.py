"""Model-based test: the device tracks the abstract engine step-for-step.

The rule machine drives a SunderDevice and a BitsetEngine through the
same random symbol stream, interleaving host-side operations (summarize,
live status reads, context save/restore) that must never perturb the
matching semantics.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import SunderConfig, SunderDevice
from repro.regex import compile_ruleset
from repro.sim import BitsetEngine, ReportRecorder, bytes_to_nibbles
from repro.transform import to_rate

_MACHINE = to_rate(compile_ruleset([("ab", "AB"), ("cd", "CD"),
                                    ("bb+c", "BC")]), 2)


class DeviceVsEngine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.device = SunderDevice(
            SunderConfig(rate_nibbles=2, report_bits=16, fifo=False)
        )
        self.device.configure(_MACHINE)
        self.engine = BitsetEngine(_MACHINE)
        self.engine.reset()
        self.recorder = ReportRecorder()
        self.saved = None
        self.saved_engine_state = None
        self.steps = 0

    @rule(byte=st.sampled_from(list(b"abcdx")))
    def step_symbol(self, byte):
        vector = tuple(bytes_to_nibbles([byte]))
        self.device.step(vector)
        self.engine.step(vector, self.recorder)
        self.steps += 1

    @rule()
    def host_summarize(self):
        # Summarization is a host-side read: matching state is untouched.
        self.device.summarize_all()

    @rule()
    def host_live_status(self):
        status = self.device.live_report_status()
        # Live reporting states must be exactly the engine's active
        # reporting states.
        want = {
            state_id for state_id in self.engine.active_ids()
            if _MACHINE.state(state_id).report
        }
        assert set(status) == want

    @rule()
    def save_context(self):
        self.saved = self.device.save_context()
        self.saved_engine_state = (self.engine._active, self.engine._cycle)

    @rule()
    def restore_context(self):
        if self.saved is None:
            return
        self.device.load_context(self.saved)
        self.engine._active, self.engine._cycle = self.saved_engine_state

    @invariant()
    def active_sets_agree(self):
        device_active = set()
        for _, _, pu in self.device.iter_pus():
            for column, state in enumerate(pu.state_of_column):
                if state is not None and pu.active[column]:
                    device_active.add(state.id)
        assert device_active == set(self.engine.active_ids())


DeviceVsEngine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=30, deadline=None,
)
TestDeviceVsEngineStateful = DeviceVsEngine.TestCase
