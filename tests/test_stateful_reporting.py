"""Model-based (stateful hypothesis) tests of the reporting region.

A plain-Python deque is the reference model; the rule machine interleaves
appends, FIFO drains, flushes, and summarization arbitrarily and checks
that the hardware region never loses, reorders, duplicates, or corrupts
an entry.  This is the strongest guarantee the reporting architecture
needs: the host always reconstructs exactly the report stream.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core import ReportingRegion, SramSubarray, SunderConfig


class ReportingRegionMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        # Small capacity so flushes actually happen: 4 entries/row.
        self.config = SunderConfig(
            rate_nibbles=4, report_bits=12, metadata_bits=52, fifo=True,
            fifo_drain_rows_per_cycle=0.0,  # drains only via explicit rules
        )
        subarray = SramSubarray(self.config.subarray_rows,
                                self.config.subarray_cols)
        self.received = []
        self.region = ReportingRegion(subarray, self.config,
                                      sink=self.received.extend)
        self.model = []          # entries still resident, oldest first
        self.model_received = []  # entries the host got, in order
        self.next_cycle = 0
        self.ever_reported = set()

    # ------------------------------------------------------------------
    @rule(position=st.integers(0, 11))
    def append(self, position):
        bits = np.zeros(12, dtype=bool)
        bits[position] = True
        cycle = self.next_cycle
        self.next_cycle += 1
        self.region.append(bits, cycle)
        # Model: a full region flushes everything before the write.
        if len(self.model) >= self.config.report_capacity:
            self.model_received.extend(self.model)
            self.model = []
        self.model.append((cycle, position))
        self.ever_reported.add(position)

    @rule(budget=st.integers(1, 10))
    def drain(self, budget):
        drained = self.region.tick(max_entries=budget)
        assert drained == min(budget, len(self.model))
        self.model_received.extend(self.model[:drained])
        self.model = self.model[drained:]

    @precondition(lambda self: self.model)
    @rule()
    def flush(self):
        self.region.flush()
        self.model_received.extend(self.model)
        self.model = []
        self.ever_reported = set()

    @rule()
    def summarize(self):
        summary, _ = self.region.summarize()
        live_positions = {position for _, position in self.model}
        got = set(np.flatnonzero(summary))
        # Summarization ORs whole rows: it must cover every live entry and
        # may additionally include stale bits from drained-but-unerased
        # slots; it can never invent a position that never reported.
        assert live_positions <= got
        assert got <= self.ever_reported | live_positions

    # ------------------------------------------------------------------
    @invariant()
    def resident_entries_match_model(self):
        entries = self.region.read_entries()
        assert [(e.cycle, int(np.flatnonzero(e.report_vector)[0]))
                for e in entries] == self.model

    @invariant()
    def received_stream_matches_model(self):
        got = [(e.cycle, int(np.flatnonzero(e.report_vector)[0]))
               for e in self.received]
        assert got == self.model_received

    @invariant()
    def count_consistent(self):
        assert self.region.count == len(self.model)
        assert 0 <= self.region.count <= self.config.report_capacity


ReportingRegionMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=60, deadline=None,
)
TestReportingRegionStateful = ReportingRegionMachine.TestCase
