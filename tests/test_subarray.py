"""Bit-level subarray tests: ports, wired-NOR, stability limits."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import MAX_ACTIVATED_ROWS, SramSubarray
from repro.errors import ArchitectureError


class TestPort1:
    def test_write_read_roundtrip(self):
        array = SramSubarray(8, 8)
        row = np.array([1, 0, 1, 0, 0, 1, 1, 0], dtype=bool)
        array.write_row(3, row)
        assert (array.read_row(3) == row).all()

    def test_partial_write(self):
        array = SramSubarray(8, 8)
        array.write_bits(2, 3, [True, True])
        expected = np.zeros(8, dtype=bool)
        expected[3:5] = True
        assert (array.read_row(2) == expected).all()

    def test_row_bounds_checked(self):
        array = SramSubarray(4, 4)
        with pytest.raises(ArchitectureError):
            array.read_row(4)
        with pytest.raises(ArchitectureError):
            array.write_row(-1, np.zeros(4, dtype=bool))

    def test_column_bounds_checked(self):
        array = SramSubarray(4, 4)
        with pytest.raises(ArchitectureError):
            array.write_bits(0, 3, [True, True])

    def test_wrong_width_rejected(self):
        array = SramSubarray(4, 4)
        with pytest.raises(ArchitectureError):
            array.write_row(0, np.zeros(5, dtype=bool))

    def test_access_counters(self):
        array = SramSubarray(4, 4)
        array.write_row(0, np.zeros(4, dtype=bool))
        array.read_row(0)
        array.wired_nor([0])
        assert (array.port1_writes, array.port1_reads, array.port2_reads) == (1, 1, 1)


class TestPort2:
    def test_single_row_nor_is_inversion(self):
        array = SramSubarray(4, 4)
        array.write_row(0, [True, False, True, False])
        assert list(array.wired_nor([0])) == [False, True, False, True]

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=16),
           st.integers(0, 2 ** 30))
    def test_nor_semantics_property(self, row_values, seed):
        rng = np.random.RandomState(seed % (2 ** 31))
        array = SramSubarray(16, 8)
        data = rng.rand(16, 8) < 0.4
        array.cells[:, :] = data
        rows = sorted({v % 16 for v in row_values})
        got = array.wired_nor(rows)
        want = ~np.any(data[rows, :], axis=0)
        assert (got == want).all()

    def test_wired_or_is_inverted_nor(self):
        array = SramSubarray(8, 4)
        array.write_row(1, [True, False, False, True])
        assert (array.wired_or([1, 2]) == ~array.wired_nor([1, 2])).all()

    def test_activation_limit_enforced(self):
        array = SramSubarray(128, 4)
        with pytest.raises(ArchitectureError):
            array.wired_nor(range(MAX_ACTIVATED_ROWS + 1))
        array.wired_nor(range(MAX_ACTIVATED_ROWS))  # at the limit: fine

    def test_empty_activation_rejected(self):
        with pytest.raises(ArchitectureError):
            SramSubarray(4, 4).wired_nor([])


class TestHousekeeping:
    def test_clear(self):
        array = SramSubarray(4, 4)
        array.cells[:] = True
        array.clear()
        assert array.utilization() == 0.0

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ArchitectureError):
            SramSubarray(0, 4)
