"""Unit and property tests for SymbolSet."""

import pytest
from hypothesis import given, strategies as st

from repro.automata import SymbolSet
from repro.errors import SymbolError

masks8 = st.integers(min_value=0, max_value=(1 << 256) - 1)
masks4 = st.integers(min_value=0, max_value=(1 << 16) - 1)


class TestConstruction:
    def test_empty_and_full(self):
        empty = SymbolSet.empty(8)
        full = SymbolSet.full(8)
        assert empty.is_empty() and not empty
        assert full.is_full() and len(full) == 256

    def test_of_and_contains(self):
        sset = SymbolSet.of(8, [0, 10, 255])
        assert 0 in sset and 10 in sset and 255 in sset
        assert 5 not in sset and 300 not in sset

    def test_single(self):
        assert list(SymbolSet.single(4, 7)) == [7]

    def test_from_ranges(self):
        sset = SymbolSet.from_ranges(8, [(10, 12), (20, 20)])
        assert sorted(sset) == [10, 11, 12, 20]

    def test_out_of_range_symbol_rejected(self):
        with pytest.raises(SymbolError):
            SymbolSet.of(4, [16])

    def test_reversed_range_rejected(self):
        with pytest.raises(SymbolError):
            SymbolSet.from_ranges(8, [(5, 3)])

    def test_bad_width_rejected(self):
        with pytest.raises(SymbolError):
            SymbolSet(0)

    def test_immutable(self):
        sset = SymbolSet.full(4)
        with pytest.raises(AttributeError):
            sset.mask = 0

    def test_from_bytes_literal(self):
        sset = SymbolSet.from_bytes_literal(b"ab")
        assert sorted(sset) == [ord("a"), ord("b")]


class TestAlgebra:
    def test_union_intersect_difference(self):
        a = SymbolSet.of(8, [1, 2, 3])
        b = SymbolSet.of(8, [3, 4])
        assert sorted(a | b) == [1, 2, 3, 4]
        assert sorted(a & b) == [3]
        assert sorted(a - b) == [1, 2]

    def test_complement(self):
        a = SymbolSet.of(4, [0, 15])
        assert len(~a) == 14
        assert (~~a) == a

    def test_alphabet_mismatch_rejected(self):
        with pytest.raises(SymbolError):
            SymbolSet.full(4) | SymbolSet.full(8)

    def test_subset_and_overlap(self):
        a = SymbolSet.of(8, [1, 2])
        b = SymbolSet.of(8, [1, 2, 3])
        assert a.is_subset(b) and not b.is_subset(a)
        assert a.overlaps(b)
        assert not a.overlaps(SymbolSet.of(8, [9]))

    @given(masks4, masks4)
    def test_de_morgan(self, m1, m2):
        a, b = SymbolSet(4, m1), SymbolSet(4, m2)
        assert ~(a | b) == (~a) & (~b)
        assert ~(a & b) == (~a) | (~b)

    @given(masks4)
    def test_complement_partitions(self, mask):
        a = SymbolSet(4, mask)
        assert (a | ~a).is_full()
        assert (a & ~a).is_empty()


class TestQueries:
    def test_min_max(self):
        sset = SymbolSet.of(8, [9, 100, 3])
        assert sset.min() == 3 and sset.max() == 100

    def test_min_of_empty_raises(self):
        with pytest.raises(SymbolError):
            SymbolSet.empty(8).min()

    def test_density(self):
        assert SymbolSet.full(4).density() == 1.0
        assert SymbolSet.of(4, [0]).density() == 1 / 16

    def test_ranges_merging(self):
        sset = SymbolSet.of(8, [1, 2, 3, 7, 9, 10])
        assert list(sset.ranges()) == [(1, 3), (7, 7), (9, 10)]

    @given(masks4)
    def test_ranges_cover_exactly(self, mask):
        sset = SymbolSet(4, mask)
        covered = set()
        for low, high in sset.ranges():
            covered |= set(range(low, high + 1))
        assert covered == set(sset)

    @given(masks4)
    def test_len_matches_iter(self, mask):
        sset = SymbolSet(4, mask)
        assert len(sset) == len(list(sset))


class TestNibbleSplit:
    def test_full_byte_set_is_one_group(self):
        groups = SymbolSet.full(8).split_nibbles()
        assert len(groups) == 1
        high, low = groups[0]
        assert high.is_full() and low.is_full()

    def test_single_byte(self):
        groups = SymbolSet.single(8, 0xAB).split_nibbles()
        assert len(groups) == 1
        high, low = groups[0]
        assert list(high) == [0xA] and list(low) == [0xB]

    def test_requires_8_bits(self):
        with pytest.raises(SymbolError):
            SymbolSet.full(4).split_nibbles()

    @given(masks8)
    def test_split_reconstructs_exactly(self, mask):
        sset = SymbolSet(8, mask)
        rebuilt = set()
        groups = sset.split_nibbles()
        for high, low in groups:
            for h in high:
                for l in low:
                    value = (h << 4) | l
                    assert value not in rebuilt, "groups must be disjoint"
                    rebuilt.add(value)
        assert rebuilt == set(sset)

    @given(masks8)
    def test_split_group_count_bounded(self, mask):
        groups = SymbolSet(8, mask).split_nibbles()
        assert len(groups) <= 16


class TestRendering:
    def test_full_renders_star(self):
        assert SymbolSet.full(8).to_charclass() == "[*]"

    def test_range_rendering(self):
        sset = SymbolSet.from_ranges(8, [(ord("a"), ord("f"))])
        assert sset.to_charclass() == "[a-f]"

    def test_escapes_nonprintable(self):
        assert "\\x00" in SymbolSet.single(8, 0).to_charclass()

    def test_roundtrip_through_anml_parser(self):
        from repro.automata.anml import parse_charclass
        for members in ([5], [0, 255], list(range(50, 80)), [10, 12, 14]):
            sset = SymbolSet.of(8, members)
            assert parse_charclass(sset.to_charclass()) == sset
