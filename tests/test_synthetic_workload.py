"""Synthetic-workload builder tests."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.synthetic import synthetic_workload


class TestSyntheticWorkload:
    def test_hits_report_cycle_target(self):
        instance = synthetic_workload(report_cycle_pct=8.0, scale=0.005,
                                      seed=1)
        row = instance.measured_behavior()
        assert row["report_cycle_pct"] == pytest.approx(8.0, abs=1.0)

    def test_burst_profile(self):
        instance = synthetic_workload(
            report_cycle_pct=4.0, burst_size=6, burst_fraction=0.5,
            scale=0.005, seed=2,
        )
        row = instance.measured_behavior()
        # Expected mean: 0.5*6 + 0.5*1 = 3.5.
        assert row["reports_per_report_cycle"] == pytest.approx(3.5, abs=0.8)

    def test_state_budget(self):
        instance = synthetic_workload(states=400, scale=0.005, seed=0)
        assert len(instance.automaton) >= 400

    def test_pattern_length_controls_report_fraction(self):
        short = synthetic_workload(states=400, pattern_length=6,
                                   scale=0.005, seed=3)
        long = synthetic_workload(states=400, pattern_length=30,
                                  scale=0.005, seed=3)
        assert (short.measured_behavior()["report_state_pct"]
                > long.measured_behavior()["report_state_pct"])

    def test_silent_configuration(self):
        instance = synthetic_workload(report_cycle_pct=0.0, scale=0.005)
        assert instance.measured_behavior()["reports"] == 0

    @pytest.mark.parametrize("kwargs", [
        {"burst_size": 0},
        {"burst_fraction": 1.5},
        {"report_cycle_pct": 150.0},
        {"report_cycle_pct": 20.0, "witness_length": 30},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            synthetic_workload(scale=0.005, **kwargs)

    def test_deterministic(self):
        a = synthetic_workload(scale=0.005, seed=9)
        b = synthetic_workload(scale=0.005, seed=9)
        assert a.input_bytes == b.input_bytes
