"""Transformation correctness: the core property of the whole pipeline.

Every test here enforces the same contract: for any automaton and any
byte input, the set of (byte position, report code) pairs is identical
between the original 8-bit machine and its 1/2/4-nibble transforms.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import Automaton, StartKind, SymbolSet
from repro.errors import TransformError
from repro.regex import compile_pattern, compile_ruleset
from repro.transform import (
    byte_reports,
    check_equivalent,
    nibble_report_position_to_byte,
    square,
    stride,
    to_nibbles,
    to_rate,
    transform_overhead,
    verify_offset_invariant,
)

PATTERNS = [
    "abc", "a(b|c)d", "ab*c", "a.c", "[a-c]{2,4}x", "foo|bar+",
    "^start", "a+b+", "(ab)+c", "he(llo)+ world", "[0-9]+[a-f]",
    "a(b|cd)*e",
]
ALPHABET = b"abcdefxyz 0123hello world start"


class TestNibbleTransform:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_equivalence_randomized(self, pattern):
        automaton = compile_pattern(pattern)
        nibble = to_nibbles(automaton)
        rng = random.Random(hash(pattern) & 0xFFFF)
        for _ in range(20):
            data = bytes(rng.choice(ALPHABET)
                         for _ in range(rng.randint(0, 40)))
            check_equivalent(automaton, nibble, data)

    def test_shape(self, abc_automaton):
        nibble = to_nibbles(abc_automaton)
        assert nibble.bits == 4
        assert nibble.arity == 1
        assert nibble.start_period == 2

    def test_unminimized_is_also_equivalent(self, abc_automaton):
        nibble = to_nibbles(abc_automaton, minimized=False)
        check_equivalent(abc_automaton, nibble, b"zzabcabz")

    def test_minimization_shrinks_redundant_rules(self):
        from repro.automata import single_pattern, union
        # Two identical literal rules: naive decomposition duplicates the
        # chains; the congruence merge collapses them.
        machine = union([
            single_pattern("p1", b"ab", report_code="r"),
            single_pattern("p2", b"ab", report_code="r"),
        ])
        naive = to_nibbles(machine, minimized=False)
        minimized = to_nibbles(machine, minimized=True)
        assert len(minimized) < len(naive)
        check_equivalent(machine, minimized, b"zababz")

    def test_rejects_non_byte_automata(self):
        automaton = Automaton(bits=4)
        automaton.new_state("s", SymbolSet.full(4), start="all-input")
        with pytest.raises(TransformError):
            to_nibbles(automaton)

    def test_position_mapping_rejects_even(self):
        with pytest.raises(TransformError):
            nibble_report_position_to_byte(4)

    def test_reports_on_low_nibble(self, abc_automaton):
        from repro.sim import BitsetEngine, stream_for
        nibble = to_nibbles(abc_automaton)
        vectors, limit = stream_for(nibble, b"abc")
        recorder = BitsetEngine(nibble).run(vectors, position_limit=limit)
        assert all(event.position % 2 == 1 for event in recorder.events)


class TestStriding:
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("rate", [2, 4])
    def test_equivalence_randomized(self, pattern, rate):
        automaton = compile_pattern(pattern)
        strided = to_rate(automaton, rate)
        rng = random.Random((hash(pattern) ^ rate) & 0xFFFF)
        for _ in range(15):
            data = bytes(rng.choice(ALPHABET)
                         for _ in range(rng.randint(0, 40)))
            check_equivalent(automaton, strided, data)

    def test_offset_invariant_holds(self):
        for pattern in PATTERNS[:6]:
            automaton = compile_pattern(pattern)
            for rate in (2, 4):
                verify_offset_invariant(to_rate(automaton, rate))

    def test_odd_length_inputs_pad_correctly(self, abc_automaton):
        strided = to_rate(abc_automaton, 4)
        # 'abc' is 6 nibbles: pads 2; the report must still appear and no
        # pad-position artifacts may leak.
        for data in (b"abc", b"xabc", b"xxabc", b"xxxabc"):
            check_equivalent(abc_automaton, strided, data)

    def test_native_4bit_start_period_1(self):
        # A native 4-bit automaton (start period 1) strides with phase
        # states: matches must be found at odd offsets too.
        automaton = Automaton(bits=4)
        automaton.new_state("a", SymbolSet.of(4, [1]), start="all-input")
        automaton.new_state("b", SymbolSet.of(4, [2]), report=True,
                            report_code="hit")
        automaton.add_transition("a", "b")
        squared = square(automaton)
        from repro.sim import BitsetEngine, vectorize
        for stream in ([1, 2], [0, 1, 2], [0, 0, 1, 2], [1, 2, 1, 2]):
            vectors, limit = vectorize(stream, 2)
            got = BitsetEngine(squared).run(
                vectors, position_limit=limit
            ).event_keys()
            want = BitsetEngine(automaton).run(stream).event_keys()
            assert got == want, stream

    def test_stride_factor_must_be_power_of_two(self, abc_automaton):
        nibble = to_nibbles(abc_automaton)
        with pytest.raises(TransformError):
            stride(nibble, 3)

    def test_stride_one_returns_copy(self, abc_automaton):
        nibble = to_nibbles(abc_automaton)
        copy = stride(nibble, 1)
        assert copy is not nibble
        assert len(copy) == len(nibble)

    def test_mid_vector_report_not_suppressed_by_failing_tail(self):
        # 'ab' reports after 4 nibbles; at rate 4 a vector holds 2 bytes,
        # so a match of 'ab' at bytes 0-1 followed by garbage at bytes
        # 2-3 must still report (the remnant-state mechanism).
        automaton = compile_pattern("ab", report_code="ab")
        strided = to_rate(automaton, 4)
        check_equivalent(automaton, strided, b"abZZ")
        check_equivalent(automaton, strided, b"ZabZ")

    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=24), st.sampled_from([1, 2, 4]))
    def test_ruleset_equivalence_hypothesis(self, raw, rate):
        data = bytes(byte % 8 + ord("a") for byte in raw)
        machine = compile_ruleset(["ab", "b(c|d)e", "ha+h"])
        strided = to_rate(machine, rate)
        check_equivalent(machine, strided, data)


class TestOverheadAccounting:
    def test_ratios_normalized_to_base(self, small_ruleset):
        overhead = transform_overhead(small_ruleset)
        base = overhead["base"]["states"]
        assert overhead[1]["states"] == pytest.approx(
            overhead[1]["state_ratio"] * base
        )
        # 2-nibble should be near 1x: one byte per cycle, like the base.
        assert 0.5 < overhead[2]["state_ratio"] < 2.0

    def test_unsupported_rate_rejected(self, abc_automaton):
        with pytest.raises(TransformError):
            to_rate(abc_automaton, 3)

    def test_byte_reports_helper(self, abc_automaton):
        want = byte_reports(abc_automaton, b"xabcx")
        assert want == {(3, "abc")}
        got = byte_reports(to_rate(abc_automaton, 2), b"xabcx")
        assert got == want

    def test_check_equivalent_raises_with_diff(self, abc_automaton):
        other = compile_pattern("abd", report_code="abc")
        with pytest.raises(TransformError):
            check_equivalent(abc_automaton, to_nibbles(other), b"abc abd")


class TestNative4BitStriding:
    """Striding automata that are natively 4-bit (start period 1).

    These exercise the phase-state machinery (mid-vector starts) far more
    than byte-derived machines, whose starts always align with vector
    boundaries.
    """

    @pytest.mark.parametrize("seed", range(10))
    def test_square_equivalence_random(self, seed):
        import random as _random
        from conftest import random_automaton
        from repro.sim import BitsetEngine, vectorize

        rng = _random.Random(seed)
        automaton = random_automaton(rng, n_states=7, bits=4,
                                     edge_density=0.3)
        if len(automaton) == 0:
            return
        squared = square(automaton)
        verify_offset_invariant(squared)
        for _ in range(8):
            stream = [rng.randrange(16) for _ in range(rng.randint(0, 20))]
            vectors, limit = vectorize(stream, 2)
            got = BitsetEngine(squared).run(
                vectors, position_limit=limit
            ).event_keys()
            want = BitsetEngine(automaton).run(stream).event_keys()
            assert got == want, (seed, stream)

    @pytest.mark.parametrize("seed", range(5))
    def test_double_square_equivalence_random(self, seed):
        import random as _random
        from conftest import random_automaton
        from repro.sim import BitsetEngine, vectorize

        rng = _random.Random(1000 + seed)
        automaton = random_automaton(rng, n_states=6, bits=4,
                                     edge_density=0.3)
        if len(automaton) == 0:
            return
        strided = stride(automaton, 4)
        verify_offset_invariant(strided)
        for _ in range(6):
            stream = [rng.randrange(16) for _ in range(rng.randint(0, 24))]
            vectors, limit = vectorize(stream, 4)
            got = BitsetEngine(strided).run(
                vectors, position_limit=limit
            ).event_keys()
            want = BitsetEngine(automaton).run(stream).event_keys()
            assert got == want, (seed, stream)

    def test_start_of_data_only_automaton(self):
        from repro.automata import Automaton, SymbolSet
        from repro.sim import BitsetEngine, vectorize

        automaton = Automaton(bits=4)
        automaton.new_state("a", SymbolSet.of(4, [1]),
                            start="start-of-data")
        automaton.new_state("b", SymbolSet.of(4, [2]), report=True,
                            report_code="ab")
        automaton.add_transition("a", "b")
        squared = square(automaton)
        for stream in ([1, 2], [2, 1], [1, 2, 1, 2], [1]):
            vectors, limit = vectorize(stream, 2)
            got = BitsetEngine(squared).run(
                vectors, position_limit=limit
            ).event_keys()
            want = BitsetEngine(automaton).run(stream).event_keys()
            assert got == want, stream
