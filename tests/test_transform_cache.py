"""Tests for the content-addressed transform cache (repro.transform.cache).

Covers the acceptance criteria of the cache PR: cached and fresh
transforms are structurally identical at every supported rate, the
code-version salt invalidates entries, corrupt on-disk artifacts degrade
to a miss with a warning metric, worker sharing goes through the disk
tier, and cache hits are visible (and excluded from stage timing) in the
telemetry.
"""

import os
import random

import pytest

from repro import obs
from repro.automata import single_pattern, union
from repro.transform import cache as transform_cache
from repro.transform import (
    check_equivalent,
    last_call_was_hit,
    square,
    stride,
    to_nibbles,
    to_rate,
)
from repro.workloads import BENCHMARK_NAMES, generate
from conftest import random_automaton


@pytest.fixture(autouse=True)
def fresh_cache():
    """Every test starts and ends with a pristine memory-only cache."""
    transform_cache.configure()
    yield
    transform_cache.configure()


def _stats():
    return transform_cache.get_cache().stats


class TestKeying:
    def test_same_structure_same_key(self):
        a = single_pattern("p", b"abc")
        b = single_pattern("p", b"abc")
        assert (transform_cache.TransformCache.key("nibble", a, minimized=True)
                == transform_cache.TransformCache.key(
                    "nibble", b, minimized=True))

    def test_params_change_key(self):
        a = single_pattern("p", b"abc")
        key = transform_cache.TransformCache.key
        assert key("nibble", a, minimized=True) != key(
            "nibble", a, minimized=False)
        assert key("nibble", a, minimized=True) != key(
            "stride", a, minimized=True)

    def test_code_version_salts_key(self, monkeypatch):
        a = single_pattern("p", b"abc")
        before = transform_cache.TransformCache.key("nibble", a)
        monkeypatch.setattr(transform_cache, "CODE_VERSION", "next-version")
        assert transform_cache.TransformCache.key("nibble", a) != before


class TestMemoryTier:
    def test_second_call_hits_and_matches(self):
        a = single_pattern("pat", b"hello")
        first = to_nibbles(a)
        assert not last_call_was_hit()
        second = to_nibbles(a)
        assert last_call_was_hit()
        assert first.fingerprint() == second.fingerprint()
        assert first.dumps() == second.dumps()
        assert _stats()["memory_hits"] == 1

    def test_hits_return_independent_copies(self):
        a = single_pattern("pat", b"hello")
        first = to_nibbles(a)
        second = to_nibbles(a)
        assert first is not second
        first.name = "mutated"
        assert to_nibbles(a).name != "mutated"

    def test_structurally_equal_sources_share_entries(self):
        first = to_nibbles(single_pattern("pat", b"xyz"))
        assert not last_call_was_hit()
        second = to_nibbles(single_pattern("pat", b"xyz"))
        assert last_call_was_hit()
        assert first.dumps() == second.dumps()

    def test_lru_evicts_oldest(self):
        transform_cache.configure(memory_entries=1)
        to_nibbles(single_pattern("a", b"one"))
        to_nibbles(single_pattern("b", b"two"))
        assert _stats()["evictions"] >= 1
        to_nibbles(single_pattern("a", b"one"))
        assert not last_call_was_hit()

    def test_outer_miss_wins_over_inner_hits(self):
        nib = to_nibbles(single_pattern("pat", b"abcd"))
        square(nib)  # populate the inner square entry
        stride(nib, 2)  # outer stride misses, inner square hits
        assert not last_call_was_hit()
        stride(nib, 2)
        assert last_call_was_hit()


class TestDiskTier:
    def test_shared_directory_across_processes(self, tmp_path):
        directory = str(tmp_path)
        transform_cache.configure(directory=directory)
        a = single_pattern("pat", b"hello world")
        first = to_rate(a, 4)
        assert os.listdir(directory)
        # A fresh cache on the same directory models a new process.
        transform_cache.configure(directory=directory)
        second = to_rate(a, 4)
        assert _stats()["disk_hits"] > 0
        assert first.dumps() == second.dumps()

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        transform_cache.configure(directory=str(tmp_path))
        to_rate(single_pattern("pat", b"abc"), 2)
        assert all(name.endswith(".json") for name in os.listdir(str(tmp_path)))

    def test_corrupt_artifact_is_a_miss_with_warning_metric(self, tmp_path):
        directory = str(tmp_path)
        transform_cache.configure(directory=directory)
        a = single_pattern("pat", b"hello")
        first = to_rate(a, 2)
        for name in os.listdir(directory):
            with open(os.path.join(directory, name), "w") as handle:
                handle.write('{"format": "repro-automaton", "version":')
        transform_cache.configure(directory=directory)
        registry = obs.MetricsRegistry()
        with obs.collecting(registry=registry):
            second = to_rate(a, 2)
            corrupt = registry.get(
                "repro_transform_cache_corrupt_total").value
        assert _stats()["corrupt"] > 0
        assert corrupt > 0
        assert first.dumps() == second.dumps()

    def test_truncated_artifact_is_a_miss(self, tmp_path):
        directory = str(tmp_path)
        transform_cache.configure(directory=directory)
        a = single_pattern("pat", b"truncate me")
        first = to_rate(a, 2)
        for name in os.listdir(directory):
            path = os.path.join(directory, name)
            data = open(path).read()
            open(path, "w").write(data[: len(data) // 2])
        transform_cache.configure(directory=directory)
        second = to_rate(a, 2)
        assert _stats()["corrupt"] > 0
        assert first.dumps() == second.dumps()

    def test_salt_change_invalidates_disk_entries(self, tmp_path, monkeypatch):
        directory = str(tmp_path)
        transform_cache.configure(directory=directory)
        a = single_pattern("pat", b"hello")
        to_rate(a, 2)
        monkeypatch.setattr(transform_cache, "CODE_VERSION", "bumped")
        transform_cache.configure(directory=directory)
        to_rate(a, 2)
        assert _stats()["disk_hits"] == 0
        assert _stats()["misses"] > 0

    def test_env_var_selects_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv(transform_cache.ENV_VAR, str(tmp_path))
        monkeypatch.setattr(transform_cache, "_ACTIVE", None)
        assert transform_cache.get_cache().directory == str(tmp_path)

    def test_info_and_clear(self, tmp_path):
        transform_cache.configure(directory=str(tmp_path))
        to_rate(single_pattern("pat", b"abc"), 2)
        info = transform_cache.get_cache().info()
        assert info["disk_entries"] > 0
        assert info["disk_bytes"] > 0
        assert info["memory_used"] > 0
        removed = transform_cache.get_cache().clear()
        assert removed == info["disk_entries"] + info["memory_used"]
        after = transform_cache.get_cache().info()
        assert after["disk_entries"] == 0 and after["memory_used"] == 0


class TestDifferential:
    """Cached results must be structurally identical to fresh builds."""

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_registry_benchmarks_all_rates(self, name):
        automaton = generate(name, scale=0.003, seed=5).automaton
        for rate in (1, 2, 4):
            transform_cache.configure()  # cold cache: a real build
            fresh = to_rate(automaton, rate)
            cached = to_rate(automaton, rate)
            assert last_call_was_hit()
            assert fresh.fingerprint() == cached.fingerprint()
            assert fresh.dumps() == cached.dumps()
            assert fresh.name == cached.name

    def test_rate_names_are_uniform(self):
        a = single_pattern("pat", b"abc")
        assert to_rate(a, 1).name == "pat.1nibble"
        assert to_rate(a, 2).name == "pat.2nibble"
        assert to_rate(a, 4).name == "pat.4nibble"

    def test_cached_transform_stays_language_preserving(self, rng):
        automaton = random_automaton(rng, n_states=10)
        data = bytes(rng.randrange(256) for _ in range(300))
        for rate in (2, 4):
            cached = to_rate(automaton, rate)  # second call is the copy
            check_equivalent(automaton, cached, data)


class TestStrideRegression:
    """stride() minimizes only the final machine — results must stay
    deterministic (bit-identical across fresh builds) and correct."""

    def test_bit_identical_across_fresh_builds(self, rng):
        automaton = random_automaton(rng, n_states=9)
        nib = to_nibbles(automaton)
        transform_cache.configure()
        first = stride(nib, 4)
        transform_cache.configure()
        second = stride(nib, 4)
        assert first.dumps() == second.dumps()

    def test_final_only_minimization_preserves_language(self, rng):
        for _ in range(3):
            automaton = random_automaton(rng, n_states=8)
            data = bytes(rng.randrange(256) for _ in range(200))
            strided = to_rate(automaton, 4)
            check_equivalent(automaton, strided, data)

    def test_duplicate_rules_collapse(self):
        machines = [single_pattern("dup", b"abcabc") for _ in range(6)]
        merged = union(machines, name="dup")
        nib = to_nibbles(merged)
        solo = to_nibbles(single_pattern("dup", b"abcabc"))
        assert len(nib) == len(solo)


class TestTelemetry:
    def test_hit_miss_counters(self):
        registry = obs.MetricsRegistry()
        with obs.collecting(registry=registry):
            a = single_pattern("pat", b"hello")
            to_nibbles(a)
            to_nibbles(a)
            hits = registry.get("repro_transform_cache_hits_total")
            misses = registry.get("repro_transform_cache_misses_total")
            assert hits.labels(tier="memory").value == 1
            assert misses.value >= 1

    def test_cached_stage_excluded_from_stage_seconds(self):
        a = single_pattern("pat", b"hello world!")
        registry = obs.MetricsRegistry()
        trace = obs.TraceCollector()
        with obs.collecting(registry=registry, trace=trace):
            to_rate(a, 2)
            cold = registry.get(
                "repro_transform_stage_seconds").labels(stage="nibble").count
            to_rate(a, 2)
            warm = registry.get(
                "repro_transform_stage_seconds").labels(stage="nibble").count
        assert cold == 1
        assert warm == 1  # the hit did not observe a second sample
        nibble_spans = [span for span in trace.finished()
                        if span.name == "transform.nibble"]
        assert [span.attrs.get("cached") for span in nibble_spans] == [
            False, True]
        cache_spans = [span for span in trace.finished()
                       if span.name == "transform.cache"]
        assert cache_spans, "cache lookups emit transform.cache spans"
        assert {span.attrs.get("tier") for span in cache_spans} >= {
            "miss", "memory"}
