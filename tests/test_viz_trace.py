"""Visualization and tracing tests."""

import pytest

from repro.automata import outline, single_pattern, to_dot, write_dot
from repro.sim import Tracer


class TestDot:
    def test_structure_present(self, abc_automaton):
        dot = to_dot(abc_automaton)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        for state in abc_automaton:
            assert '"%s"' % state.id in dot
        assert "doublecircle" in dot  # reporting state styled
        assert "color=blue" in dot    # all-input start styled

    def test_edges_rendered(self):
        machine = single_pattern("p", b"ab")
        dot = to_dot(machine)
        assert '"p_0" -> "p_1";' in dot

    def test_size_guard(self, abc_automaton):
        with pytest.raises(ValueError):
            to_dot(abc_automaton, max_states=1)

    def test_escaping(self):
        machine = single_pattern('we"ird', b"ab")
        assert '\\"' in to_dot(machine)

    def test_write_dot(self, tmp_path, abc_automaton):
        path = tmp_path / "a.dot"
        write_dot(abc_automaton, str(path))
        assert path.read_text().startswith("digraph")


class TestOutline:
    def test_flags_and_truncation(self):
        machine = single_pattern("p", b"abcdef")
        text = outline(machine, max_states=3)
        assert "[S " in text or "[S]" in text.replace("  ", " ")
        assert "more states" in text

    def test_full_render(self, abc_automaton):
        text = outline(abc_automaton)
        assert "3 states" in text


class TestTracer:
    def test_trace_contents(self, abc_automaton):
        tracer = Tracer(abc_automaton)
        recorder = tracer.run(list(b"xabc"))
        assert recorder.positions() == [3]
        assert len(tracer.cycles) == 4
        assert tracer.cycles[0].active == []
        assert tracer.cycles[3].reports == [("p2", "abc")]
        assert tracer.report_cycles() == [3]
        assert tracer.active_counts() == [0, 1, 1, 1]

    def test_render(self, abc_automaton):
        tracer = Tracer(abc_automaton)
        tracer.run(list(b"abcab"))
        text = tracer.render(max_cycles=3)
        assert "REPORT abc" in tracer.render()
        assert "more cycles" in text

    def test_as_dict(self, abc_automaton):
        tracer = Tracer(abc_automaton)
        tracer.run(list(b"abc"))
        record = tracer.cycles[2].as_dict()
        assert record["cycle"] == 2
        assert record["reports"] == [{"state": "p2", "code": "abc"}]

    def test_nibble_rendering(self, abc_automaton):
        from repro.transform import to_rate
        from repro.sim import stream_for
        machine = to_rate(abc_automaton, 2)
        tracer = Tracer(machine)
        vectors, limit = stream_for(machine, b"abc")
        recorder = tracer.run(vectors, position_limit=limit)
        assert recorder.total_reports == 1
        assert "/" in tracer.render()  # hex nibble rendering


class TestTracerBounded:
    def test_ring_buffer_keeps_last_cycles(self, abc_automaton):
        tracer = Tracer(abc_automaton, max_cycles=3)
        recorder = tracer.run(list(b"xxabcabc"))
        assert recorder.total_reports == 2
        assert tracer.cycles_seen == 8
        assert len(tracer.cycles) == 3
        # absolute cycle indices of the retained tail
        assert [trace.cycle for trace in tracer.cycles] == [5, 6, 7]
        assert tracer.report_cycles() == [7]  # within the window
        assert tracer.render()  # renders from the ring without error

    def test_on_cycle_callback_without_storage(self, abc_automaton):
        seen = []
        tracer = Tracer(abc_automaton, on_cycle=seen.append)
        tracer.run(list(b"xabc"))
        assert len(seen) == 4
        assert [trace.cycle for trace in seen] == [0, 1, 2, 3]
        assert seen[3].reports == [("p2", "abc")]
        assert tracer.cycles_seen == 4
        assert len(tracer.cycles) == 0  # callback-only: nothing stored

    def test_callback_plus_ring_keeps_tail(self, abc_automaton):
        seen = []
        tracer = Tracer(abc_automaton, max_cycles=2, on_cycle=seen.append)
        tracer.run(list(b"xabc"))
        assert len(seen) == 4
        assert [trace.cycle for trace in tracer.cycles] == [2, 3]

    def test_rerun_resets_counters(self, abc_automaton):
        tracer = Tracer(abc_automaton, max_cycles=2)
        tracer.run(list(b"abcabc"))
        tracer.run(list(b"abc"))
        assert tracer.cycles_seen == 3
        assert [trace.cycle for trace in tracer.cycles] == [1, 2]

    def test_invalid_max_cycles(self, abc_automaton):
        import pytest
        with pytest.raises(ValueError):
            Tracer(abc_automaton, max_cycles=0)

    def test_default_behaviour_unchanged(self, abc_automaton):
        tracer = Tracer(abc_automaton)
        tracer.run(list(b"xabc"))
        assert isinstance(tracer.cycles, list)
        assert len(tracer.cycles) == 4
        assert tracer.cycles[0].cycle == 0
