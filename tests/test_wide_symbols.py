"""16-bit (wide-alphabet) transformation tests — the SPM-style case."""

import random

import pytest

from repro.automata import Automaton, StartKind, SymbolSet
from repro.errors import TransformError
from repro.sim import BitsetEngine, vectorize
from repro.transform import (
    stride,
    to_nibbles,
    verify_offset_invariant,
    wide_report_position_to_symbol,
    wide_symbols_to_nibbles,
)
from repro.transform.nibble import _decompose_wide


def _wide_chain(symbol_sets, name="wide"):
    """Chain automaton over 16-bit symbols, reporting at the end."""
    automaton = Automaton(name=name, bits=16)
    previous = None
    last = len(symbol_sets) - 1
    for index, sset in enumerate(symbol_sets):
        state_id = "%s%d" % (name, index)
        automaton.new_state(
            state_id, sset,
            start=StartKind.ALL_INPUT if index == 0 else StartKind.NONE,
            report=index == last,
            report_code=name if index == last else None,
        )
        if previous:
            automaton.add_transition(previous, state_id)
        previous = state_id
    return automaton


def _wide_hits(automaton, symbols):
    recorder = BitsetEngine(automaton).run([(value,) for value in symbols])
    return {(event.position, event.report_code) for event in recorder.events}


def _nibble_hits(machine, symbols, arity=1):
    nibbles = wide_symbols_to_nibbles(symbols)
    vectors, limit = vectorize(nibbles, arity)
    recorder = BitsetEngine(machine).run(vectors, position_limit=limit)
    return {
        (wide_report_position_to_symbol(event.position), event.report_code)
        for event in recorder.events
    }


class TestDecomposition:
    def test_chains_partition_exactly(self):
        rng = random.Random(0)
        for _ in range(20):
            members = {rng.randrange(1 << 16)
                       for _ in range(rng.randint(1, 40))}
            sset = SymbolSet.of(16, members)
            rebuilt = set()
            for chain in _decompose_wide(sset, 4):
                values = {0}
                for nibble_set in chain:
                    values = {
                        (value << 4) | nib
                        for value in values for nib in nibble_set
                    }
                assert not values & rebuilt, "chains must be disjoint"
                rebuilt |= values
            assert rebuilt == members

    def test_full_range_is_one_chain(self):
        chains = _decompose_wide(SymbolSet.full(16), 4)
        assert len(chains) == 1
        assert all(part.is_full() for part in chains[0])

    def test_singleton(self):
        chains = _decompose_wide(SymbolSet.single(16, 0xBEEF), 4)
        assert len(chains) == 1
        assert [list(part)[0] for part in chains[0]] == [0xB, 0xE, 0xE, 0xF]


class TestWideTransform:
    @pytest.mark.parametrize("seed", range(8))
    def test_equivalence_random(self, seed):
        rng = random.Random(seed)
        alphabet = [rng.randrange(1 << 16) for _ in range(6)]
        sets = [
            SymbolSet.of(16, rng.sample(alphabet, rng.randint(1, 3)))
            for _ in range(rng.randint(1, 3))
        ]
        automaton = _wide_chain(sets, "w%d" % seed)
        machine = to_nibbles(automaton)
        assert machine.bits == 4
        assert machine.start_period == 4
        for _ in range(10):
            symbols = [rng.choice(alphabet + [0, 0xFFFF])
                       for _ in range(rng.randint(0, 10))]
            assert _nibble_hits(machine, symbols) == _wide_hits(
                automaton, symbols
            ), (seed, symbols)

    def test_strides_to_16bit_rate(self):
        # Nibble machine (period 4) squared twice: one 16-bit symbol per
        # strided cycle, period folding 4 -> 2 -> 1.
        sets = [SymbolSet.of(16, [0x1234, 0xABCD]), SymbolSet.single(16, 7)]
        automaton = _wide_chain(sets, "stride")
        machine = to_nibbles(automaton)
        strided = stride(machine, 4)
        assert strided.arity == 4
        assert strided.start_period == 1
        verify_offset_invariant(strided)
        rng = random.Random(3)
        for _ in range(10):
            symbols = [rng.choice([0x1234, 0xABCD, 7, 0])
                       for _ in range(rng.randint(0, 8))]
            assert _nibble_hits(strided, symbols, arity=4) == _wide_hits(
                automaton, symbols
            ), symbols

    def test_intermediate_period_two(self):
        sets = [SymbolSet.single(16, 0x00FF)]
        machine = to_nibbles(_wide_chain(sets))
        squared = stride(machine, 2)
        assert squared.start_period == 2


class TestHelpers:
    def test_symbol_flattening_order(self):
        assert wide_symbols_to_nibbles([0xABCD]) == [0xA, 0xB, 0xC, 0xD]

    def test_out_of_range_symbol_rejected(self):
        with pytest.raises(TransformError):
            wide_symbols_to_nibbles([1 << 16])

    def test_position_mapping(self):
        assert wide_report_position_to_symbol(3) == 0
        assert wide_report_position_to_symbol(7) == 1
        with pytest.raises(TransformError):
            wide_report_position_to_symbol(4)

    def test_unsupported_width_rejected(self):
        automaton = Automaton(bits=12)
        automaton.new_state("s", SymbolSet.of(12, [1]), start="all-input")
        with pytest.raises(TransformError):
            to_nibbles(automaton)
