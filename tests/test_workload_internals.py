"""Tests for workload-generation internals (base.py machinery)."""

import pytest

from repro.errors import WorkloadError
from repro.regex import compile_pattern
from repro.sim import BitsetEngine
from repro.workloads.base import (
    COLD_ALPHABET,
    WorkloadRandom,
    escape_literal,
    grow_cold_rules,
    infer_noise_budget,
    plant_schedule,
    scaled,
)


class TestEscaping:
    def test_escape_literal_roundtrip(self):
        data = bytes(range(0, 256, 7))
        automaton = compile_pattern(escape_literal(data))
        recorder = BitsetEngine(automaton).run(list(data))
        assert recorder.positions() == [len(data) - 1]

    def test_escapes_metacharacters(self):
        pattern = escape_literal(b".*[]()")
        automaton = compile_pattern(pattern)
        assert BitsetEngine(automaton).run(list(b".*[]()")).total_reports == 1
        assert BitsetEngine(automaton).run(list(b"ab[]()")).total_reports == 0


class TestColdRules:
    def test_cold_alphabet_disjoint_from_ascii(self):
        assert all(byte >= 0x80 for byte in COLD_ALPHABET)

    def test_grow_until_budget(self):
        rng = WorkloadRandom(0)
        rules = grow_cold_rules(
            rng, lambda r: escape_literal(r.cold_literal(10)), 95, "t"
        )
        total = sum(len(rule) for rule in rules)
        assert total >= 95
        # Cold rules never fire on ASCII noise.
        for rule in rules[:3]:
            assert BitsetEngine(rule).run(list(b"abcdefghij" * 4)).total_reports == 0

    def test_zero_budget_gives_no_rules(self):
        rng = WorkloadRandom(0)
        assert grow_cold_rules(rng, lambda r: "ignored", 0, "t") == []


class TestPlanning:
    def test_scaled_floors_at_minimum(self):
        assert scaled(5, 0.001) == 1
        assert scaled(1000, 0.01) == 10
        assert scaled(5, 0.001, minimum=3) == 3

    def test_infer_noise_budget_guards_degenerate_scales(self):
        assert infer_noise_budget(0.01) == 10_000
        with pytest.raises(WorkloadError):
            infer_noise_budget(0.00001)

    def test_plant_schedule_density(self):
        rng = WorkloadRandom(1)
        plants = plant_schedule(rng, 10_000, 5.0, b"needle", 0.01)
        assert len(plants) == pytest.approx(500, abs=1)
        positions = [position for position, _ in plants]
        assert positions == sorted(positions)
        # Non-overlapping end-aligned slots.
        for a, b in zip(positions, positions[1:]):
            assert b - a >= len(b"needle") + 1

    def test_plant_schedule_absolute_counts(self):
        rng = WorkloadRandom(1)
        plants = plant_schedule(rng, 10_000, 0.0, b"x", 0.01,
                                absolute_reports=35)
        assert len(plants) == 1  # 35 * 0.01 rounds to 1 (floored at 1)

    def test_workload_random_helpers(self):
        rng = WorkloadRandom(7)
        literal = rng.literal(12, b"ab")
        assert len(literal) == 12 and set(literal) <= {ord("a"), ord("b")}
        cold = rng.cold_literal(6)
        assert all(byte in COLD_ALPHABET for byte in cold)
