"""Workload-generator tests: determinism and Table 1 calibration."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    BENCHMARK_NAMES,
    PAPER_TABLE1,
    generate,
    hamming_automaton,
    levenshtein_automaton,
    spm_automaton,
)
from repro.workloads.base import (
    burst_group_patterns,
    build_input,
    poisson_positions,
    WorkloadRandom,
)

SCALE = 0.004

# Dynamic targets with loose tolerance: generated inputs are stochastic.
CALIBRATED = {
    "Snort": ("report_cycle_pct", 94.89, 3.0),
    "TCP": ("report_cycle_pct", 9.84, 1.5),
    "Brill": ("report_cycle_pct", 11.33, 2.0),
    "Protomata": ("report_cycle_pct", 10.08, 2.0),
    "SPM": ("report_cycle_pct", 3.24, 1.0),
    "EntityResolution": ("report_cycle_pct", 2.73, 1.0),
    "Bro217": ("report_cycle_pct", 1.64, 0.8),
}


@pytest.fixture(scope="module")
def instances():
    return {name: generate(name, scale=SCALE, seed=0)
            for name in BENCHMARK_NAMES}


@pytest.fixture(scope="module")
def behaviors(instances):
    return {name: inst.measured_behavior()
            for name, inst in instances.items()}


class TestGeneration:
    def test_all_benchmarks_generate(self, instances):
        assert set(instances) == set(PAPER_TABLE1)

    def test_deterministic_given_seed(self):
        a = generate("Bro217", scale=SCALE, seed=3)
        b = generate("Bro217", scale=SCALE, seed=3)
        assert a.input_bytes == b.input_bytes
        assert len(a.automaton) == len(b.automaton)

    def test_seed_changes_output(self):
        a = generate("Bro217", scale=SCALE, seed=1)
        b = generate("Bro217", scale=SCALE, seed=2)
        assert a.input_bytes != b.input_bytes

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            generate("NotABenchmark")

    def test_automata_validate(self, instances):
        for instance in instances.values():
            instance.automaton.validate()

    def test_input_length_scales(self, instances):
        for instance in instances.values():
            assert len(instance.input_bytes) == int(1_000_000 * SCALE)


class TestCalibration:
    @pytest.mark.parametrize("name", sorted(CALIBRATED))
    def test_dynamic_targets(self, behaviors, name):
        key, target, tolerance = CALIBRATED[name]
        assert behaviors[name][key] == pytest.approx(target, abs=tolerance)

    def test_silent_benchmarks_stay_silent(self, behaviors):
        for name in ("ClamAV",):
            assert behaviors[name]["reports"] == 0
        for name in ("Dotstar03", "ExactMatch", "Ranges1", "Hamming"):
            assert behaviors[name]["report_cycle_pct"] < 0.2

    def test_burst_benchmarks_burst(self, behaviors):
        assert behaviors["Brill"]["reports_per_report_cycle"] > 5
        assert behaviors["Fermi"]["reports_per_report_cycle"] > 4
        assert behaviors["SPM"]["reports_per_report_cycle"] > 4

    def test_snort_reports_nearly_every_cycle(self, behaviors):
        assert behaviors["Snort"]["reports_per_report_cycle"] == pytest.approx(
            1.72, abs=0.15
        )

    def test_report_state_fractions_in_paper_band(self, behaviors):
        # Paper range is 1% - 8.5%; allow generation slack.
        for name, row in behaviors.items():
            assert 0.5 <= row["report_state_pct"] <= 16.0, name


class TestBuilders:
    def test_hamming_accepts_within_distance(self):
        from repro.sim import BitsetEngine
        automaton = hamming_automaton(b"ACGTACGT", 2, "h", "h")
        for data, expected in [
            (b"ACGTACGT", True),   # exact
            (b"ACGAACGT", True),   # 1 mismatch
            (b"TCGAACGT", True),   # 2 mismatches
            (b"TCGAACGA", False),  # 3 mismatches
        ]:
            recorder = BitsetEngine(automaton).run(list(data))
            assert bool(recorder.total_reports) is expected, data

    def test_levenshtein_accepts_edits(self):
        from repro.sim import BitsetEngine
        automaton = levenshtein_automaton(b"ACGTAC", 1, "l", "l")
        for data, expected in [
            (b"ACGTAC", True),    # exact
            (b"AGGTAC", True),    # substitution
            (b"ACGATAC", True),   # insertion
            (b"ACTAC", True),     # deletion
            (b"AGGTTAC", False),  # distance 2
        ]:
            recorder = BitsetEngine(automaton).run(list(data))
            assert bool(recorder.total_reports) is expected, data

    def test_spm_matches_with_gaps(self):
        from repro.sim import BitsetEngine
        automaton = spm_automaton(b"abc", "s", "s")
        assert BitsetEngine(automaton).run(list(b"a..b....c")).total_reports == 1
        assert BitsetEngine(automaton).run(list(b"acb")).total_reports == 0

    def test_burst_group_patterns_all_match_witness(self):
        from repro.regex import compile_pattern
        from repro.sim import BitsetEngine
        rng = WorkloadRandom(0)
        witness = b"abcdef"
        for body in burst_group_patterns(witness, 6, rng):
            automaton = compile_pattern(body)
            assert BitsetEngine(automaton).run(list(witness)).total_reports == 1

    def test_poisson_positions_respect_density_limit(self):
        rng = WorkloadRandom(0)
        with pytest.raises(WorkloadError):
            poisson_positions(rng, 100, 60, 5)

    def test_build_input_plants_witnesses(self):
        rng = WorkloadRandom(0)
        data = build_input(rng, 50, [(10, b"NEEDLE")])
        assert data[10:16] == b"NEEDLE"
        assert len(data) == 50
